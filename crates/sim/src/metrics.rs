//! Legacy named-counter facade over the telemetry counter store.
//!
//! Table 5.2 of the paper reports, for each library component, the CPU,
//! memory and network bandwidth consumed while eleven probes report. The
//! counters behind that accounting now live in `smartsock-telemetry`
//! (`Scheduler::telemetry`); this module remains as a **deprecated
//! compatibility facade** so external callers of `Scheduler::metrics` keep
//! working. Both views share one store: a counter bumped through either API
//! is visible through the other.
//!
//! New code should use `Scheduler::telemetry` directly
//! (`counter_add` / `counter_incr` / `counter_add_labeled`), which also
//! enforces static kebab-case metric names via the `SS-OBS-001` analyzer
//! rule.

use smartsock_telemetry::SharedCounters;

/// A set of monotonically increasing named counters.
///
/// Deprecated facade: see the module docs. A `Metrics` value is a handle to
/// a shared store — cloning it clones the handle, not the counters.
#[derive(Clone, Debug)]
pub struct Metrics {
    store: SharedCounters,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A standalone store (not attached to any telemetry sink).
    pub fn new() -> Self {
        Metrics { store: SharedCounters::default() }
    }

    /// A facade over an existing telemetry counter store.
    pub fn from_shared(store: SharedCounters) -> Self {
        Metrics { store }
    }

    /// Add `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        let mut c = self.store.borrow_mut();
        if let Some(v) = c.get_mut(name) {
            *v += delta;
        } else {
            c.insert(name.to_owned(), delta);
        }
    }

    /// Increment the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.store.borrow().get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.store
            .borrow()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Snapshot of `(name, value)` pairs in lexicographic order.
    ///
    /// Historically this returned a borrowing iterator; the shared interior
    /// store makes that impossible, so it now returns an owned snapshot.
    pub fn iter(&self) -> Vec<(String, u64)> {
        self.store.borrow().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Drop all counters (used between experiment repetitions).
    pub fn clear(&mut self) {
        self.store.borrow_mut().clear();
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.store.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut m = Metrics::new();
        assert_eq!(m.get("x"), 0);
        m.add("x", 3);
        m.add("x", 4);
        m.incr("x");
        assert_eq!(m.get("x"), 8);
    }

    #[test]
    fn sum_prefix_aggregates_only_matching_names() {
        let mut m = Metrics::new();
        m.add("probe.a.bytes", 10);
        m.add("probe.b.bytes", 20);
        m.add("probf.c.bytes", 99); // lexicographic successor, must not match
        m.add("monitor.bytes", 5);
        assert_eq!(m.sum_prefix("probe."), 30);
        assert_eq!(m.sum_prefix("monitor."), 5);
        assert_eq!(m.sum_prefix("nothing."), 0);
    }

    #[test]
    fn iteration_is_sorted_and_clear_resets() {
        let mut m = Metrics::new();
        m.add("b", 2);
        m.add("a", 1);
        let names: Vec<_> = m.iter().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(m.len(), 2);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn facade_and_telemetry_share_one_store() {
        let mut t = smartsock_telemetry::Telemetry::new();
        let mut m = Metrics::from_shared(t.shared_counters());
        m.add("legacy.name", 2);
        t.counter_add("telemetry-name", 3);
        assert_eq!(t.counter("legacy.name"), 2);
        assert_eq!(m.get("telemetry-name"), 3);
        let mut m2 = m.clone();
        m2.incr("legacy.name");
        assert_eq!(m.get("legacy.name"), 3, "clone shares the handle");
    }
}
