//! Virtual time for the discrete-event simulation.
//!
//! All timestamps are integer nanoseconds since simulation start. Integer
//! arithmetic keeps the event order total and reproducible; helpers convert
//! to/from floating-point seconds at the edges (the paper reports seconds,
//! milliseconds, Mbps and KB/s, so the harness converts once per printed
//! figure rather than carrying floats through the engine).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A timestamp far beyond any experiment horizon; used as "never".
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX / 4);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative: {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// This instant expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This instant expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Elapsed duration since `earlier`. Saturates at zero rather than
    /// panicking, because measurement code frequently races a probe reply
    /// against its own send timestamp.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction producing `None` when `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative: {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration to serialize `bytes` onto a link running at `bits_per_sec`.
    ///
    /// This is the transmission-delay term `d_trans = S / R` of the paper's
    /// Equation (3.3). Returns `FAR_FUTURE`-scale duration for a zero rate so
    /// that a dead link never delivers.
    pub fn transmission(bytes: u64, bits_per_sec: f64) -> Self {
        if bits_per_sec <= 0.0 {
            return SimDuration(SimTime::FAR_FUTURE.0);
        }
        Self::from_secs_f64((bytes as f64 * 8.0) / bits_per_sec)
    }

    /// Scale by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MILLI {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn transmission_delay_matches_s_over_r() {
        // 1500 bytes on 100 Mbps = 120 microseconds.
        let d = SimDuration::transmission(1500, 100e6);
        assert_eq!(d.as_nanos(), 120_000);
    }

    #[test]
    fn transmission_on_dead_link_never_completes() {
        let d = SimDuration::transmission(1, 0.0);
        assert!(SimTime::ZERO + d >= SimTime::FAR_FUTURE);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let big = SimDuration(u64::MAX - 1);
        assert_eq!((big + big).0, u64::MAX);
        assert_eq!(SimDuration::ZERO - SimDuration::from_secs(1), SimDuration::ZERO);
    }

    #[test]
    fn millis_helpers_agree() {
        assert_eq!(SimDuration::from_millis(20), SimDuration::from_millis_f64(20.0));
        assert!((SimDuration::from_millis(20).as_millis_f64() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000000s");
    }
}
