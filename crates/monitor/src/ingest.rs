//! Shared report-ingest path: one decode-and-upsert used by every backend.
//!
//! The system monitor daemon (simulated, `sysmon.rs`) and the live
//! combined monitor+wizard daemon (`smartsock-live`) must classify and
//! store an incoming probe datagram *identically* — same UTF-8 check,
//! same ASCII parse, same time-stamped upsert — or the two backends
//! drift. This function is that single path.

use smartsock_proto::{Ip, ServerStatusReport};
use smartsock_sim::SimTime;

use crate::db::SysDb;

/// Why a datagram was rejected. Both counts feed the same
/// `sysmon-bad-reports` counter; the split exists for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// Not UTF-8 text.
    NotText,
    /// Text, but not a parseable `SSR1` status report.
    BadReport,
}

/// Decode one probe datagram and upsert it into `db` stamped `now`.
/// Returns the reporting server's address on success.
pub fn ingest_ascii(db: &mut SysDb, payload: &[u8], now: SimTime) -> Result<Ip, IngestError> {
    let text = std::str::from_utf8(payload).map_err(|_| IngestError::NotText)?;
    let report = ServerStatusReport::parse_ascii(text).map_err(|_| IngestError::BadReport)?;
    let ip = report.ip;
    db.upsert(report, now);
    Ok(ip)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_reports_are_upserted_and_stamped() {
        let mut db = SysDb::default();
        let r = ServerStatusReport::empty("helene", Ip::new(192, 168, 3, 10));
        let ip = ingest_ascii(&mut db, r.encode_ascii().as_bytes(), SimTime::from_secs(4)).unwrap();
        assert_eq!(ip, Ip::new(192, 168, 3, 10));
        let stored = db.get(ip).unwrap();
        assert_eq!(stored.recorded_at, SimTime::from_secs(4));
        assert_eq!(stored.report.host.as_str(), "helene");
    }

    #[test]
    fn rejects_non_utf8_and_non_reports() {
        let mut db = SysDb::default();
        assert_eq!(
            ingest_ascii(&mut db, &[0xff, 0xfe, 0x01], SimTime::ZERO),
            Err(IngestError::NotText)
        );
        assert_eq!(
            ingest_ascii(&mut db, b"not a report", SimTime::ZERO),
            Err(IngestError::BadReport)
        );
        assert!(db.is_empty());
    }
}
