//! # smartsock-monitor
//!
//! The three monitor daemons of the Smart TCP socket library (paper §3.2.2,
//! §3.3, §3.4) plus the status databases they maintain.
//!
//! * [`SystemMonitor`] — receives ASCII status reports from server probes
//!   on UDP port 1111, upserts them into the system status database
//!   (`sysdb`), time-stamps every record and expires servers that miss
//!   three consecutive reporting intervals (§3.2.2, §4.1).
//! * [`NetworkMonitor`] — one per server group; probes its peer monitors
//!   **sequentially** (§3.3.3: "Multiple probes should not run
//!   simultaneously") with the one-way UDP stream method of §3.3.2, and
//!   records `(delay, bandwidth)` pairs per neighbouring group in `netdb`
//!   (Table 3.4).
//! * [`SecurityMonitor`] — §3.4's deliberately open security component:
//!   reads host clearance levels from a dummy security log into `secdb`; a
//!   third-party agent (Cisco NAC et al.) could feed the same records.
//!
//! The databases stand in for the paper's System-V shared-memory segments
//! (Tables 4.2/4.3); `parking_lot::RwLock` provides the semaphore
//! discipline. The transmitter (crate `smartsock-wire`) snapshots them for
//! shipping to the wizard machine.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod db;
pub mod estimator;
pub mod health;
pub mod ingest;
pub mod iperf;
pub mod netmon;
pub mod pathload;
pub mod pipechar;
pub mod secmon;
pub mod sysmon;

pub use db::{
    report_var, subnet_of, NetDb, SecDb, Shard, ShardSummary, SharedNetDb, SharedSecDb,
    SharedSysDb, SubnetKey, SysDb, TimedReport, VarRanges, REPORT_VARS,
};
pub use estimator::{bandwidth_mbps_from_pair, BwEstimate, ProbePairSpec};
pub use health::{shared_health, HealthConfig, HealthTable, SharedHealthDb, StateKind, Transition};
pub use ingest::{ingest_ascii, IngestError};
pub use netmon::{NetMonConfig, NetworkMonitor};
pub use secmon::SecurityMonitor;
pub use sysmon::{SysMonConfig, SystemMonitor};
