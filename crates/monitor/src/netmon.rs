//! The network monitor (paper §3.3.3).
//!
//! One monitor runs per server group. Each round it probes **one** peer
//! monitor — rounds never overlap, honouring the paper's rule that
//! concurrent probes would interfere — by sending `pairs_per_round`
//! (S1, S2) UDP datagrams to a closed port and timing the ICMP
//! port-unreachable echoes. The reduced `(delay, bandwidth)` record goes
//! into `netdb`, giving the Table 3.4 matrix over time.

use std::cell::RefCell;
use std::rc::Rc;

use smartsock_net::{Network, Payload};
use smartsock_proto::consts::{ports, timing};
use smartsock_proto::{Endpoint, Ip, NetPathRecord};
use smartsock_sim::{Scheduler, SimDuration, SpanId};

use crate::db::SharedNetDb;
use crate::estimator::{reduce_round, ProbePairSpec};

/// Network monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetMonConfig {
    /// Gap between successive probing rounds (§5.2: every 2 s).
    pub interval: SimDuration,
    /// (S1, S2) repetitions per round.
    pub pairs_per_round: usize,
    /// Probe sizes (default: the paper's 1600/2900).
    pub spec: ProbePairSpec,
    /// Abort a round if an echo does not return within this time.
    pub echo_timeout: SimDuration,
}

impl Default for NetMonConfig {
    fn default() -> Self {
        NetMonConfig {
            interval: SimDuration::from_secs(timing::NETPROBE_INTERVAL_SECS),
            pairs_per_round: 5,
            spec: ProbePairSpec::OPTIMAL_1500,
            echo_timeout: SimDuration::from_secs(2),
        }
    }
}

struct MonState {
    peers: Vec<Ip>,
    next_peer: usize,
    rounds_completed: u64,
}

/// One network-monitor daemon.
#[derive(Clone)]
pub struct NetworkMonitor {
    ip: Ip,
    net: Network,
    db: SharedNetDb,
    cfg: NetMonConfig,
    st: Rc<RefCell<MonState>>,
}

/// Per-round shared context for the chained echo callbacks.
struct RoundCtx {
    samples: Vec<(SimDuration, SimDuration)>,
    /// T1 of the in-flight pair, once measured.
    t1: Option<SimDuration>,
    /// Pairs fully handled so far (sampled or skipped on timeout); late
    /// echoes from a skipped pair compare against this and are ignored.
    resolved: usize,
    finished: bool,
    /// Completion callback; owned here so the timeout guards can fire it
    /// even when the echo chain stalls (unreachable peer).
    on_done: Option<DoneCb>,
    /// The round's "netmon-round" span, closed when the round finalizes.
    span: SpanId,
}

impl NetworkMonitor {
    pub fn new(ip: Ip, net: Network, db: SharedNetDb, cfg: NetMonConfig) -> NetworkMonitor {
        NetworkMonitor {
            ip,
            net,
            db,
            cfg,
            st: Rc::new(RefCell::new(MonState {
                peers: Vec::new(),
                next_peer: 0,
                rounds_completed: 0,
            })),
        }
    }

    pub fn ip(&self) -> Ip {
        self.ip
    }

    /// The `netdb` this monitor writes (shared with the transmitter).
    pub fn db(&self) -> &SharedNetDb {
        &self.db
    }

    /// Inform this monitor about a neighbouring group's monitor.
    pub fn add_peer(&self, peer: Ip) {
        if peer != self.ip {
            self.st.borrow_mut().peers.push(peer);
        }
    }

    pub fn rounds_completed(&self) -> u64 {
        self.st.borrow().rounds_completed
    }

    /// Start the sequential probing loop.
    pub fn start(&self, s: &mut Scheduler) {
        let mon = self.clone();
        s.schedule_in(self.cfg.interval, move |s| mon.round(s));
    }

    /// Run one probing round immediately (used by the harness to measure
    /// without waiting for the schedule). `on_done` fires when the round's
    /// record has been stored (or the round was abandoned).
    pub fn probe_peer_now(
        &self,
        s: &mut Scheduler,
        peer: Ip,
        on_done: impl FnOnce(&mut Scheduler, Option<NetPathRecord>) + 'static,
    ) {
        let span = s.telemetry.span_start("netmon-round", &self.ip.to_string());
        let ctx = Rc::new(RefCell::new(RoundCtx {
            samples: Vec::new(),
            t1: None,
            resolved: 0,
            finished: false,
            on_done: Some(Box::new(on_done)),
            span,
        }));
        self.clone().send_pair(s, peer, Rc::clone(&ctx), 0);
        // Round guard: if echoes stop coming back, finalize with whatever
        // was collected.
        let mon = self.clone();
        let guard_ctx = Rc::clone(&ctx);
        let total_guard = SimDuration::from_nanos(
            self.cfg.echo_timeout.as_nanos() * (self.cfg.pairs_per_round as u64 * 2 + 1),
        );
        s.schedule_in(total_guard, move |s| {
            if !guard_ctx.borrow().finished {
                mon.finish_round(s, peer, &guard_ctx);
            }
        });
    }

    fn round(&self, s: &mut Scheduler) {
        let peer = {
            let mut st = self.st.borrow_mut();
            let n = st.peers.len();
            if n == 0 {
                None
            } else {
                let p = st.peers.get(st.next_peer % n).copied();
                st.next_peer += 1;
                p
            }
        };
        match peer {
            None => {
                let mon = self.clone();
                s.schedule_in(self.cfg.interval, move |s| mon.round(s));
            }
            Some(peer) => {
                let mon = self.clone();
                self.probe_peer_now(s, peer, move |s, _rec| {
                    // Sequential schedule: the next round starts one
                    // interval after this one *finished*.
                    let mon2 = mon.clone();
                    s.schedule_in(mon.cfg.interval, move |s| mon2.round(s));
                });
            }
        }
    }

    fn send_pair(self, s: &mut Scheduler, peer: Ip, ctx: Rc<RefCell<RoundCtx>>, pair_index: usize) {
        if pair_index >= self.cfg.pairs_per_round {
            self.finish_round(s, peer, &ctx);
            return;
        }
        let from = Endpoint::new(self.ip, ports::MON_NET);
        let to = Endpoint::new(peer, ports::UDP_PROBE_CLOSED);
        s.telemetry.counter_incr("netmon-probes");
        s.telemetry.counter_add(
            "netmon-bytes",
            u64::from(self.cfg.spec.s1_bytes + self.cfg.spec.s2_bytes),
        );
        // Per-pair timeout: if either echo is lost, skip this pair and
        // move on rather than stalling the whole round (§3.3.1: loss is
        // rare but must not wedge the sequential schedule).
        let guard_mon = self.clone();
        let guard_ctx = Rc::clone(&ctx);
        s.schedule_in(SimDuration::from_nanos(self.cfg.echo_timeout.as_nanos() * 2), move |s| {
            let stuck = {
                let c = guard_ctx.borrow();
                !c.finished && c.resolved == pair_index
            };
            if stuck {
                s.telemetry.counter_incr("netmon-pairs-timed-out");
                {
                    let mut c = guard_ctx.borrow_mut();
                    c.resolved = pair_index + 1;
                    c.t1 = None;
                }
                guard_mon.send_pair(s, peer, guard_ctx, pair_index + 1);
            }
        });
        // Send S1; on its echo, send S2; on that echo, advance.
        let mon = self.clone();
        let ctx1 = Rc::clone(&ctx);
        self.net.clone().send_udp(
            s,
            from,
            to,
            Payload::zeroes(u64::from(self.cfg.spec.s1_bytes)),
            Some(Box::new(move |s, echo1| {
                {
                    let c = ctx1.borrow();
                    if c.finished || c.resolved != pair_index {
                        return; // round over or pair already skipped
                    }
                }
                ctx1.borrow_mut().t1 = Some(echo1.rtt());
                let mon2 = mon.clone();
                let ctx2 = Rc::clone(&ctx1);
                mon.net.clone().send_udp(
                    s,
                    from,
                    to,
                    Payload::zeroes(u64::from(mon.cfg.spec.s2_bytes)),
                    Some(Box::new(move |s, echo2| {
                        {
                            let c = ctx2.borrow();
                            if c.finished || c.resolved != pair_index {
                                return;
                            }
                        }
                        {
                            let mut c = ctx2.borrow_mut();
                            if let Some(t1) = c.t1.take() {
                                c.samples.push((t1, echo2.rtt()));
                            }
                            c.resolved = pair_index + 1;
                        }
                        mon2.send_pair(s, peer, ctx2, pair_index + 1);
                    })),
                );
            })),
        );
    }

    fn finish_round(&self, s: &mut Scheduler, peer: Ip, ctx: &Rc<RefCell<RoundCtx>>) {
        let (on_done, span) = {
            let mut c = ctx.borrow_mut();
            if c.finished {
                return;
            }
            c.finished = true;
            (c.on_done.take(), c.span)
        };
        let record = reduce_round(self.cfg.spec, &ctx.borrow().samples).map(|est| NetPathRecord {
            from_monitor: self.ip,
            to_monitor: peer,
            delay_ms: est.delay_ms,
            bw_mbps: est.bw_mbps,
            timestamp_ns: s.now().0,
        });
        if let Some(rec) = record {
            self.db.write().upsert(rec);
            s.telemetry.counter_incr("netmon-rounds-ok");
            s.telemetry.event(
                "netmon-estimate-converged",
                &self.ip.to_string(),
                &[
                    ("peer", &peer.to_string()),
                    ("bw-mbps", &format!("{:.3}", rec.bw_mbps)),
                    ("delay-ms", &format!("{:.3}", rec.delay_ms)),
                    ("samples", &ctx.borrow().samples.len().to_string()),
                ],
            );
        } else {
            s.telemetry.counter_incr("netmon-rounds-empty");
        }
        s.telemetry.span_end(span);
        self.st.borrow_mut().rounds_completed += 1;
        if let Some(cb) = on_done {
            cb(s, record);
        }
    }
}

type DoneCb = Box<dyn FnOnce(&mut Scheduler, Option<NetPathRecord>)>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::shared_dbs;
    use smartsock_net::{HostParams, LinkParams, NetworkBuilder};
    use smartsock_sim::SimTime;

    /// Two monitor machines across a router, optionally shaped.
    fn rig(cap_mbps: Option<f64>) -> (Scheduler, Network, NetworkMonitor, NetworkMonitor) {
        let mut b = NetworkBuilder::new(77);
        let m1 = b.host("mon1", Ip::new(192, 168, 1, 1), HostParams::testbed());
        let r = b.router("core", Ip::new(192, 168, 0, 254));
        let m2 = b.host("mon2", Ip::new(192, 168, 2, 1), HostParams::testbed());
        b.duplex(m1, r, LinkParams::lan_100mbps().with_cross_load(0.05));
        b.duplex(r, m2, LinkParams::lan_100mbps().with_cross_load(0.05));
        let net = b.build();
        if let Some(cap) = cap_mbps {
            net.set_access_rate(m2, Some(cap * 1e6));
        }
        let (_, netdb1, _) = shared_dbs();
        let (_, netdb2, _) = shared_dbs();
        let a = NetworkMonitor::new(
            Ip::new(192, 168, 1, 1),
            net.clone(),
            netdb1,
            NetMonConfig::default(),
        );
        let bmon = NetworkMonitor::new(
            Ip::new(192, 168, 2, 1),
            net.clone(),
            netdb2,
            NetMonConfig::default(),
        );
        a.add_peer(bmon.ip());
        bmon.add_peer(a.ip());
        (Scheduler::new(), net, a, bmon)
    }

    #[test]
    fn a_round_measures_the_unshaped_path_near_truth() {
        let (mut s, net, a, b) = rig(None);
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        a.probe_peer_now(&mut s, b.ip(), move |_s, rec| *g.borrow_mut() = rec);
        s.run_until(SimTime::from_secs(30));
        let rec = got.borrow().expect("round must produce a record");
        let truth = net
            .path_available_bw(net.node_by_name("mon1").unwrap(), net.node_by_name("mon2").unwrap())
            .unwrap()
            / 1e6;
        assert!(
            (rec.bw_mbps - truth).abs() / truth < 0.35,
            "estimate {:.1} vs truth {truth:.1} Mbps",
            rec.bw_mbps
        );
        assert!(rec.delay_ms > 0.0 && rec.delay_ms < 5.0);
    }

    #[test]
    fn shaped_paths_are_estimated_near_the_cap() {
        for cap in [2.0f64, 5.0, 8.0] {
            let (mut s, _net, a, b) = rig(Some(cap));
            let got = Rc::new(RefCell::new(None));
            let g = Rc::clone(&got);
            a.probe_peer_now(&mut s, b.ip(), move |_s, rec| *g.borrow_mut() = rec);
            s.run_until(SimTime::from_secs(60));
            let rec = got.borrow().expect("record");
            assert!(
                (rec.bw_mbps - cap).abs() / cap < 0.35,
                "cap {cap} Mbps, estimated {:.2}",
                rec.bw_mbps
            );
        }
    }

    #[test]
    fn periodic_rounds_fill_the_database_sequentially() {
        let (mut s, _net, a, b) = rig(None);
        a.start(&mut s);
        b.start(&mut s);
        s.run_until(SimTime::from_secs(30));
        assert!(a.rounds_completed() >= 5, "completed {}", a.rounds_completed());
        assert!(a.db.read().get(a.ip(), b.ip()).is_some());
        assert!(b.db.read().get(b.ip(), a.ip()).is_some());
        // Each monitor keeps its own view; records are directional.
        assert!(a.db.read().get(b.ip(), a.ip()).is_none());
    }

    #[test]
    fn unreachable_peer_rounds_finish_via_the_guard() {
        let (mut s, _net, a, _b) = rig(None);
        a.add_peer(Ip::new(203, 0, 113, 77)); // not in the topology
        let got = Rc::new(RefCell::new(false));
        let g = Rc::clone(&got);
        a.probe_peer_now(&mut s, Ip::new(203, 0, 113, 77), move |_s, rec| {
            assert!(rec.is_none());
            *g.borrow_mut() = true;
        });
        s.run_until(SimTime::from_secs(60));
        assert!(*got.borrow(), "guard must finalize the round");
        assert_eq!(s.telemetry.counter("netmon-rounds-empty"), 1);
    }

    #[test]
    fn monitors_never_probe_themselves() {
        let (_s, _net, a, _b) = rig(None);
        a.add_peer(a.ip());
        assert_eq!(a.st.borrow().peers.len(), 1, "self-peer must be ignored");
    }
}
