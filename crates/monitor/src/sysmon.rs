//! The system status monitor (paper §3.2.2).

use smartsock_net::Network;
use smartsock_proto::consts::{ports, timing};
use smartsock_proto::{Endpoint, Ip};
use smartsock_sim::{Scheduler, SimDuration};

use crate::db::SharedSysDb;

/// System monitor configuration.
#[derive(Clone, Debug)]
pub struct SysMonConfig {
    /// The probes' reporting interval; a server missing
    /// [`timing::FAILURE_INTERVALS`] consecutive intervals is expired.
    pub probe_interval: SimDuration,
    /// How often the stale sweep runs.
    pub sweep_interval: SimDuration,
}

impl Default for SysMonConfig {
    fn default() -> Self {
        SysMonConfig {
            probe_interval: SimDuration::from_secs(timing::PROBE_INTERVAL_SECS),
            sweep_interval: SimDuration::from_secs(timing::PROBE_INTERVAL_SECS),
        }
    }
}

/// The monitor daemon: listens on UDP port 1111, maintains `sysdb`.
#[derive(Clone)]
pub struct SystemMonitor {
    ip: Ip,
    db: SharedSysDb,
    cfg: SysMonConfig,
    /// Restart generation for the sweep loop (same epoch scheme as the
    /// probe daemon): a stopped monitor's pending sweep fires into a dead
    /// epoch and dies quietly instead of double-scheduling.
    epoch: std::rc::Rc<std::cell::Cell<u64>>,
}

impl SystemMonitor {
    pub fn new(ip: Ip, db: SharedSysDb, cfg: SysMonConfig) -> SystemMonitor {
        SystemMonitor { ip, db, cfg, epoch: std::rc::Rc::new(std::cell::Cell::new(0)) }
    }

    /// The endpoint probes report to.
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::new(self.ip, ports::MON_SYS)
    }

    /// Bind the report socket and start the stale-record sweeper.
    pub fn start(&self, s: &mut Scheduler, net: &Network) {
        let mon = self.clone();
        net.bind_udp(self.endpoint(), move |s, dgram| {
            // The decode-and-upsert itself is the backend-shared ingest
            // path (crate::ingest) — the live daemon runs the same code.
            match crate::ingest::ingest_ascii(&mut mon.db.write(), &dgram.payload.data, s.now()) {
                Ok(_ip) => {
                    s.telemetry.counter_incr("sysmon-reports");
                    s.telemetry.counter_add("sysmon-bytes", dgram.payload.len());
                }
                Err(_) => s.telemetry.counter_incr("sysmon-bad-reports"),
            }
        });
        let mon = self.clone();
        let epoch = self.epoch.get();
        s.schedule_in(self.cfg.sweep_interval, move |s| mon.sweep(s, epoch));
    }

    /// Kill the daemon: unbind the report socket and halt the sweep loop.
    /// Reports sent while it is down are lost, exactly like a real machine
    /// crash; records it held go stale on its next restart sweep.
    pub fn stop(&self, net: &Network) {
        self.epoch.set(self.epoch.get() + 1);
        net.unbind_udp(self.endpoint());
    }

    /// Restart a stopped daemon: rebind, sweep immediately (everything
    /// that expired during the outage is purged at once), resume the loop.
    pub fn restart(&self, s: &mut Scheduler, net: &Network) {
        self.epoch.set(self.epoch.get() + 1);
        s.telemetry.counter_incr("sysmon-restarts");
        self.start(s, net);
        self.sweep_once(s);
    }

    fn sweep(&self, s: &mut Scheduler, epoch: u64) {
        if self.epoch.get() != epoch {
            return;
        }
        self.sweep_once(s);
        let mon = self.clone();
        s.schedule_in(self.cfg.sweep_interval, move |s| mon.sweep(s, epoch));
    }

    fn sweep_once(&self, s: &mut Scheduler) {
        let max_age = self.cfg.probe_interval.saturating_mul(u64::from(timing::FAILURE_INTERVALS));
        let dropped = self.db.write().expire(s.now(), max_age);
        if !dropped.is_empty() {
            s.telemetry.counter_add("sysmon-expired", dropped.len() as u64);
            for ip in &dropped {
                s.telemetry.event(
                    "status-db-expired",
                    &self.ip.to_string(),
                    &[("db", "sysdb"), ("server", &ip.to_string())],
                );
            }
        }
    }

    /// Number of live server records.
    pub fn live_servers(&self) -> usize {
        self.db.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::shared_dbs;
    use smartsock_hostsim::{CpuModel, Host, HostConfig};
    use smartsock_net::{HostParams, LinkParams, NetworkBuilder};
    use smartsock_probe::{ProbeConfig, ServerProbe};
    use smartsock_sim::SimTime;

    fn rig(n_servers: u8) -> (Scheduler, Network, Vec<Host>, SystemMonitor) {
        let mut b = NetworkBuilder::new(7);
        let r = b.router("switch", Ip::new(192, 168, 1, 254));
        let mon_node = b.host("monmachine", Ip::new(192, 168, 1, 1), HostParams::testbed());
        b.duplex(mon_node, r, LinkParams::lan_100mbps());
        let mut hosts = Vec::new();
        for i in 0..n_servers {
            let ip = Ip::new(192, 168, 1, 10 + i);
            let name = format!("srv{i}");
            let node = b.host(&name, ip, HostParams::testbed());
            b.duplex(node, r, LinkParams::lan_100mbps());
            hosts.push(Host::new(HostConfig::new(&name, ip, CpuModel::P4_1700, 256)));
        }
        let net = b.build();
        let (sysdb, _, _) = shared_dbs();
        let mon = SystemMonitor::new(Ip::new(192, 168, 1, 1), sysdb, SysMonConfig::default());
        let mut s = Scheduler::new();
        mon.start(&mut s, &net);
        for h in &hosts {
            ServerProbe::new(h.clone(), net.clone(), ProbeConfig::new(Ip::new(192, 168, 1, 1)))
                .start(&mut s);
        }
        (s, net, hosts, mon)
    }

    #[test]
    fn reports_populate_the_database() {
        let (mut s, _net, _hosts, mon) = rig(4);
        s.run_until(SimTime::from_secs(5));
        assert_eq!(mon.live_servers(), 4);
        assert_eq!(s.telemetry.counter("sysmon-reports"), 8); // t=2 and t=4
        assert_eq!(s.telemetry.counter("sysmon-bad-reports"), 0);
    }

    #[test]
    fn failed_server_expires_after_three_intervals_and_rejoins() {
        let (mut s, _net, hosts, mon) = rig(2);
        s.run_until(SimTime::from_secs(5));
        assert_eq!(mon.live_servers(), 2);

        hosts[0].fail();
        // Expiry horizon: 3 × 2 s after the last report (t=4) → the sweep
        // at t≥10 drops it.
        s.run_until(SimTime::from_secs(13));
        assert_eq!(mon.live_servers(), 1, "failed server must expire");

        hosts[0].recover();
        s.run_until(SimTime::from_secs(17));
        assert_eq!(mon.live_servers(), 2, "recovered server rejoins");
    }

    #[test]
    fn malformed_reports_are_counted_and_ignored() {
        let (mut s, net, _hosts, mon) = rig(1);
        let from = Endpoint::new(Ip::new(192, 168, 1, 10), 45000);
        net.send_udp(
            &mut s,
            from,
            mon.endpoint(),
            smartsock_net::Payload::data(&b"garbage report"[..]),
            None,
        );
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.telemetry.counter("sysmon-bad-reports"), 1);
        assert_eq!(mon.live_servers(), 0);
    }

    #[test]
    fn database_reflects_newest_report() {
        let (mut s, _net, hosts, mon) = rig(1);
        hosts[0].spawn_workload(&mut s, &smartsock_hostsim::Workload::super_pi(25)).unwrap();
        s.run_until(SimTime::from_secs(200));
        let snap = mon.db.read().snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].load1 > 0.8, "latest report shows the hog: {}", snap[0].load1);
    }
}
