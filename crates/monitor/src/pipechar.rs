//! A pipechar-style packet-pair estimator — one of the two reference
//! tools the thesis compares against (§2.1, Table 3.3).
//!
//! "Pipechar ... uses the packet pair method to estimate the link capacity
//! and bandwidth usage. It sends out two probing packets and measures the
//! echo time. The bandwidth value is calculated based on the gap in the
//! echo time. As a single end packet pair based tool, pipechar is very
//! flexible but less robust to network delay fluctuations."
//!
//! Implementation: two equal-size datagrams are sent back to back to a
//! closed port; the bottleneck serializes them, so the ICMP echoes return
//! separated by `S_wire / R_bottleneck` plus jitter. The estimate is
//! `S_wire / dispersion`, taken as the median over several pairs. The
//! fragility the paper observed falls out naturally: every sample inherits
//! the jitter of *one* gap, with no ΔS differencing to cancel overheads.

use std::cell::RefCell;
use std::rc::Rc;

use smartsock_net::packet::udp_wire_size;
use smartsock_net::{Network, NodeId, Payload};
use smartsock_proto::consts::ports;
use smartsock_proto::Endpoint;
use smartsock_sim::{Scheduler, SimDuration, SimTime};

/// Packet-pair configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipecharConfig {
    /// Probe payload bytes; kept under the MTU so each probe is one frame
    /// (dispersion of fragmented probes measures fragment spacing instead).
    pub probe_bytes: u32,
    /// Number of pairs; the median dispersion is used.
    pub pairs: usize,
    /// Gap between successive pairs.
    pub pair_spacing: SimDuration,
    /// Give up on a pair whose echoes don't return within this time.
    pub timeout: SimDuration,
}

impl Default for PipecharConfig {
    fn default() -> Self {
        PipecharConfig {
            probe_bytes: 1400,
            pairs: 9,
            pair_spacing: SimDuration::from_millis(30),
            timeout: SimDuration::from_secs(2),
        }
    }
}

/// Run the packet-pair estimate from `src` to `dst`; `on_done` receives
/// the estimated bandwidth in Mbps, or `None` when too few echoes return.
pub fn estimate(
    s: &mut Scheduler,
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cfg: PipecharConfig,
    on_done: impl FnOnce(&mut Scheduler, Option<f64>) + 'static,
) {
    let from = Endpoint::new(net.ip_of(src), ports::MON_NET);
    let to = Endpoint::new(net.ip_of(dst), ports::UDP_PROBE_CLOSED);
    // Echo arrival times per pair: (first, second).
    type PairTimes = (Option<SimTime>, Option<SimTime>);
    let arrivals: Rc<RefCell<Vec<PairTimes>>> =
        Rc::new(RefCell::new(vec![(None, None); cfg.pairs]));

    for pair in 0..cfg.pairs {
        let at = s.now() + SimDuration::from_nanos(cfg.pair_spacing.as_nanos() * pair as u64);
        let net2 = net.clone();
        let arr = Rc::clone(&arrivals);
        s.schedule_at(at, move |s| {
            // Two back-to-back probes; the bottleneck spaces them.
            for leg in 0..2usize {
                let arr2 = Rc::clone(&arr);
                net2.send_udp(
                    s,
                    from,
                    to,
                    Payload::zeroes(u64::from(cfg.probe_bytes)),
                    Some(Box::new(move |s, echo| {
                        let mut a = arr2.borrow_mut();
                        if let Some(times) = a.get_mut(pair) {
                            if leg == 0 {
                                times.0 = Some(echo.received_at);
                            } else {
                                times.1 = Some(echo.received_at);
                            }
                        }
                        let _ = s;
                    })),
                );
            }
        });
    }

    // Reduce once everything returned (or the deadline passes).
    let deadline = s.now()
        + SimDuration::from_nanos(cfg.pair_spacing.as_nanos() * cfg.pairs as u64)
        + cfg.timeout;
    let arr = Rc::clone(&arrivals);
    let wire = udp_wire_size(u64::from(cfg.probe_bytes));
    s.schedule_at(deadline, move |s| {
        let mut dispersions_ns: Vec<u64> = arr
            .borrow()
            .iter()
            .filter_map(|&(a, b)| match (a, b) {
                (Some(a), Some(b)) if b > a => Some(b.since(a).as_nanos()),
                _ => None,
            })
            .collect();
        dispersions_ns.sort_unstable();
        let Some(&median) = dispersions_ns.get(dispersions_ns.len() / 2) else {
            on_done(s, None);
            return;
        };
        let mbps = wire as f64 * 8.0 / (median as f64 / 1e9) / 1e6;
        on_done(s, Some(mbps));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_net::{HostParams, LinkParams, NetworkBuilder};
    use smartsock_proto::Ip;

    fn pair_net(seed: u64, rate_mbps: f64) -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(seed);
        let a = b.host("a", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let r = b.router("r", Ip::new(10, 0, 0, 254));
        let c = b.host("c", Ip::new(10, 0, 1, 1), HostParams::testbed());
        b.duplex(a, r, LinkParams::lan_100mbps());
        b.duplex(r, c, LinkParams::lan_100mbps().with_rate(rate_mbps * 1e6));
        (b.build(), a, c)
    }

    fn run_estimate(net: &Network, a: NodeId, c: NodeId) -> Option<f64> {
        let mut s = Scheduler::new();
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        estimate(&mut s, net, a, c, PipecharConfig::default(), move |_s, e| {
            *g.borrow_mut() = Some(e)
        });
        s.run();
        let e = got.borrow_mut().take().expect("estimate finishes");
        e
    }

    #[test]
    fn packet_pair_finds_the_bottleneck_rate() {
        for rate in [10.0f64, 30.0, 100.0] {
            let (net, a, c) = pair_net(7, rate);
            let est = run_estimate(&net, a, c).expect("echoes return");
            assert!((est - rate).abs() / rate < 0.3, "bottleneck {rate} Mbps, estimated {est:.1}");
        }
    }

    #[test]
    fn unreachable_targets_yield_none() {
        let mut b = NetworkBuilder::new(9);
        let a = b.host("a", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let x = b.host("x", Ip::new(10, 9, 9, 9), HostParams::testbed());
        let net = b.build();
        let mut s = Scheduler::new();
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        estimate(&mut s, &net, a, x, PipecharConfig::default(), move |_s, e| {
            *g.borrow_mut() = Some(e)
        });
        s.run();
        assert_eq!(got.borrow_mut().take(), Some(None));
    }
}
