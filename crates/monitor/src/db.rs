//! The three status databases (`sysdb`, `netdb`, `secdb` of Fig 3.10).
//!
//! In the thesis these are System-V shared-memory segments guarded by
//! semaphores (Table 4.3), written by the monitors and read by the
//! transmitter (or, on the wizard machine, written by the receiver and
//! read by the wizard). Here each database is an `Arc<RwLock<...>>`: the
//! same concurrent-reader/exclusive-writer discipline without the UB.
//!
//! ## Sharding (DESIGN.md §15)
//!
//! At fleet scale (10k+ servers) the server status database is keyed in
//! two levels: an outer `BTreeMap` from IPv4 /24 subnet prefix to
//! [`Shard`], and per-shard row maps keyed by full address. Because the
//! /24 prefix is the high 24 bits of the address, iterating shards in
//! prefix order and rows in address order visits records in exactly the
//! global address order the flat map had — every legacy accessor
//! (`iter`, `snapshot`, `expire`, …) is behaviorally unchanged.
//!
//! Each shard additionally maintains a conservative [`ShardSummary`]:
//! row count, the newest `recorded_at`, and per-variable min/max ranges
//! over the report-derived server variables. Summaries are **widened** on
//! upsert (cheap, always a superset of the true ranges) and recomputed
//! **exactly** during `expire` (which walks every row anyway). The
//! wizard's match loop consults summaries to skip whole subnets that
//! cannot satisfy a requirement; conservatism makes that pruning
//! behaviorally invisible.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use smartsock_proto::{Ip, NetPathRecord, SecurityRecord, ServerStatusReport};
use smartsock_sim::{SimDuration, SimTime};

/// A status report plus the time the monitor recorded it (§3.2.2: "each
/// server status record ... is tagged with the time stamp").
#[derive(Clone, Debug, PartialEq)]
pub struct TimedReport {
    pub report: ServerStatusReport,
    pub recorded_at: SimTime,
}

/// A /24 subnet prefix — the shard key.
pub type SubnetKey = [u8; 3];

/// The shard an address belongs to.
pub fn subnet_of(ip: Ip) -> SubnetKey {
    let [a, b, c, _] = ip.octets();
    [a, b, c]
}

/// The report-derived server variables a shard summary tracks ranges for:
/// Appendix B.1 minus `host_security_level` (which comes from `secdb`,
/// not the status report). The wizard asserts this list agrees with its
/// `ServerVars` bindings.
pub const REPORT_VARS: [&str; 21] = [
    "host_system_load1",
    "host_system_load5",
    "host_system_load15",
    "host_cpu_user",
    "host_cpu_nice",
    "host_cpu_system",
    "host_cpu_idle",
    "host_cpu_free",
    "host_cpu_bogomips",
    "host_memory_total",
    "host_memory_used",
    "host_memory_free",
    "host_memory_buffers",
    "host_memory_cached",
    "host_disk_allreq",
    "host_disk_rreq",
    "host_disk_rblocks",
    "host_disk_wreq",
    "host_disk_wblocks",
    "host_network_rbytesps",
    "host_network_tbytesps",
];

/// Value of one [`REPORT_VARS`] entry for a report (same bindings as the
/// wizard's `ServerVars`).
pub fn report_var(r: &ServerStatusReport, name: &str) -> Option<f64> {
    Some(match name {
        "host_system_load1" => r.load1,
        "host_system_load5" => r.load5,
        "host_system_load15" => r.load15,
        "host_cpu_user" => r.cpu_user,
        "host_cpu_nice" => r.cpu_nice,
        "host_cpu_system" => r.cpu_system,
        "host_cpu_idle" => r.cpu_idle,
        "host_cpu_free" => r.cpu_free(),
        "host_cpu_bogomips" => r.bogomips,
        "host_memory_total" => r.mem_total as f64,
        "host_memory_used" => r.mem_used as f64,
        "host_memory_free" => r.mem_free as f64,
        "host_memory_buffers" => r.mem_buffers as f64,
        "host_memory_cached" => r.mem_cached as f64,
        "host_disk_allreq" => r.disk_allreq as f64,
        "host_disk_rreq" => r.disk_rreq as f64,
        "host_disk_rblocks" => r.disk_rblocks as f64,
        "host_disk_wreq" => r.disk_wreq as f64,
        "host_disk_wblocks" => r.disk_wblocks as f64,
        "host_network_rbytesps" => r.net_rbytes_ps,
        "host_network_tbytesps" => r.net_tbytes_ps,
        _ => return None,
    })
}

/// Per-variable min/max over a shard's rows, indexed parallel to
/// [`REPORT_VARS`]. Empty ranges are `[+inf, -inf]`.
#[derive(Clone, Debug, PartialEq)]
pub struct VarRanges {
    lo: [f64; REPORT_VARS.len()],
    hi: [f64; REPORT_VARS.len()],
}

impl Default for VarRanges {
    fn default() -> Self {
        VarRanges {
            lo: [f64::INFINITY; REPORT_VARS.len()],
            hi: [f64::NEG_INFINITY; REPORT_VARS.len()],
        }
    }
}

impl VarRanges {
    /// Widen every range to cover `report`'s values.
    fn widen(&mut self, report: &ServerStatusReport) {
        let bounds = self.lo.iter_mut().zip(self.hi.iter_mut());
        for ((lo, hi), name) in bounds.zip(REPORT_VARS) {
            let v = report_var(report, name).unwrap_or(f64::NAN);
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
    }

    /// `[lo, hi]` for a named variable, or `None` when the name is not a
    /// report variable or the shard is empty.
    pub fn range_of(&self, name: &str) -> Option<(f64, f64)> {
        let i = REPORT_VARS.iter().position(|n| *n == name)?;
        let (lo, hi) = (*self.lo.get(i)?, *self.hi.get(i)?);
        if lo > hi {
            return None;
        }
        Some((lo, hi))
    }
}

/// The conservative rollup the wizard's prune pass reads: always a
/// superset of the true per-row state (see module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardSummary {
    /// Exact row count.
    pub count: usize,
    /// At least as new as the newest row's `recorded_at` — exact after
    /// every `expire`, never older than the truth in between.
    pub newest_recorded_at: SimTime,
    /// Superset ranges over [`REPORT_VARS`].
    pub ranges: VarRanges,
}

/// One /24 subnet's slice of the server status database.
#[derive(Clone, Debug, Default)]
pub struct Shard {
    rows: BTreeMap<Ip, TimedReport>,
    summary: ShardSummary,
}

impl Shard {
    /// Rows in address order.
    pub fn rows(&self) -> impl Iterator<Item = (&Ip, &TimedReport)> {
        self.rows.iter()
    }

    pub fn summary(&self) -> &ShardSummary {
        &self.summary
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Recompute the summary exactly from the current rows.
    fn recompute_summary(&mut self) {
        let mut s = ShardSummary { count: self.rows.len(), ..Default::default() };
        for t in self.rows.values() {
            if t.recorded_at > s.newest_recorded_at {
                s.newest_recorded_at = t.recorded_at;
            }
            s.ranges.widen(&t.report);
        }
        self.summary = s;
    }
}

/// The server status database, sharded by /24 subnet (address order is
/// preserved across shard boundaries — see module docs).
#[derive(Clone, Debug, Default)]
pub struct SysDb {
    shards: BTreeMap<SubnetKey, Shard>,
    total: usize,
}

impl SysDb {
    /// Insert or update one server's record (§3.2.2: update if the address
    /// exists, insert otherwise). The shard summary is widened, not
    /// recomputed: an overwrite can leave stale extremes behind until the
    /// next `expire`, which only ever makes pruning *less* aggressive.
    pub fn upsert(&mut self, report: ServerStatusReport, now: SimTime) {
        let shard = self.shards.entry(subnet_of(report.ip)).or_default();
        let ip = report.ip;
        shard.summary.ranges.widen(&report);
        if now > shard.summary.newest_recorded_at {
            shard.summary.newest_recorded_at = now;
        }
        if shard.rows.insert(ip, TimedReport { report, recorded_at: now }).is_none() {
            shard.summary.count += 1;
            self.total += 1;
        }
    }

    /// Drop records older than `max_age` (the stale sweep; with the 3×
    /// interval policy of §4.1, `max_age = 3 * probe_interval`). Returns
    /// the evicted server addresses, in address order, so callers can log
    /// and account for exactly *which* servers went dark.
    ///
    /// Boundary semantics: the comparison is `age <= max_age`, so a record
    /// aged *exactly* `max_age` is **kept** — eviction requires strictly
    /// more than `max_age` of silence. With the §4.1 policy this means a
    /// probe whose report lands on the very tick of its third missed
    /// interval still counts as alive; the sweep one interval later evicts
    /// it. Pinned by `expiry_keeps_a_record_aged_exactly_max_age`.
    pub fn expire(&mut self, now: SimTime, max_age: SimDuration) -> Vec<Ip> {
        self.expire_by_shard(now, max_age).into_iter().flat_map(|(_, ips)| ips).collect()
    }

    /// Shard-resolved stale sweep: the same evictions as [`SysDb::expire`]
    /// grouped by subnet, in shard (= address) order; shards that evicted
    /// nothing are omitted. The per-shard counts always sum to the flat
    /// sweep's count — `wizard-stale-evictions` keeps its meaning — which
    /// is pinned by `per_shard_evictions_sum_to_the_flat_count`.
    ///
    /// Touched shards get their summaries recomputed exactly (the sweep
    /// walks every row anyway), re-tightening the widen-only drift from
    /// upserts; emptied shards are dropped.
    pub fn expire_by_shard(
        &mut self,
        now: SimTime,
        max_age: SimDuration,
    ) -> Vec<(SubnetKey, Vec<Ip>)> {
        let mut by_shard = Vec::new();
        for (key, shard) in &mut self.shards {
            let mut evicted = Vec::new();
            shard.rows.retain(|&ip, r| {
                let keep = now.since(r.recorded_at) <= max_age;
                if !keep {
                    evicted.push(ip);
                }
                keep
            });
            shard.recompute_summary();
            if !evicted.is_empty() {
                self.total -= evicted.len();
                by_shard.push((*key, evicted));
            }
        }
        self.shards.retain(|_, s| !s.rows.is_empty());
        by_shard
    }

    pub fn get(&self, ip: Ip) -> Option<&TimedReport> {
        self.shards.get(&subnet_of(ip))?.rows.get(&ip)
    }

    /// Shards in subnet order, for the wizard's prune-then-descend match
    /// loop.
    pub fn iter_shards(&self) -> impl Iterator<Item = (&SubnetKey, &Shard)> {
        self.shards.iter()
    }

    /// Number of non-empty shards (subnets with live records).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live records in deterministic (address) order — the order the
    /// wizard scans candidates in.
    pub fn snapshot(&self) -> Vec<ServerStatusReport> {
        self.iter().map(|(_, t)| t.report.clone()).collect()
    }

    /// Live records plus each one's age (in nanoseconds) at `now`, in
    /// address order — the transmitter's snapshot shape. Shipping the age
    /// instead of the raw timestamp keeps the wire format clock-free: the
    /// receiver reconstructs `recorded_at = arrival - age` in its own
    /// timeline, so the wizard's staleness discount sees true row ages.
    pub fn aged_snapshot(&self, now: SimTime) -> Vec<(ServerStatusReport, u64)> {
        self.iter().map(|(_, t)| (t.report.clone(), now.since(t.recorded_at).as_nanos())).collect()
    }

    /// All records in global address order (shard prefixes are the high
    /// address bits, so chaining shards preserves the flat-map order).
    pub fn iter(&self) -> impl Iterator<Item = (&Ip, &TimedReport)> {
        self.shards.values().flat_map(|s| s.rows.iter())
    }

    pub fn len(&self) -> usize {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Replace the whole database (receiver side: §3.5.2 keeps the wizard
    /// machine's copy identical to the transmitter's).
    pub fn replace_all(&mut self, reports: Vec<ServerStatusReport>, now: SimTime) {
        self.shards.clear();
        self.total = 0;
        for r in reports {
            self.upsert(r, now);
        }
    }
}

/// The network metrics database: one record per (from, to) monitor pair.
#[derive(Clone, Debug, Default)]
pub struct NetDb {
    records: BTreeMap<(Ip, Ip), NetPathRecord>,
}

impl NetDb {
    pub fn upsert(&mut self, rec: NetPathRecord) {
        self.records.insert((rec.from_monitor, rec.to_monitor), rec);
    }

    pub fn get(&self, from: Ip, to: Ip) -> Option<&NetPathRecord> {
        self.records.get(&(from, to))
    }

    pub fn snapshot(&self) -> Vec<NetPathRecord> {
        self.records.values().copied().collect()
    }

    pub fn replace_all(&mut self, recs: Vec<NetPathRecord>) {
        self.records.clear();
        for r in recs {
            self.upsert(r);
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The security database: clearance level per host.
#[derive(Clone, Debug, Default)]
pub struct SecDb {
    records: BTreeMap<Ip, SecurityRecord>,
}

impl SecDb {
    pub fn upsert(&mut self, rec: SecurityRecord) {
        self.records.insert(rec.ip, rec);
    }

    pub fn level_of(&self, ip: Ip) -> Option<i32> {
        self.records.get(&ip).map(|r| r.level)
    }

    pub fn snapshot(&self) -> Vec<SecurityRecord> {
        self.records.values().cloned().collect()
    }

    pub fn replace_all(&mut self, recs: Vec<SecurityRecord>) {
        self.records.clear();
        for r in recs {
            self.upsert(r);
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Shared handles — the "shared memory segments".
pub type SharedSysDb = Arc<RwLock<SysDb>>;
pub type SharedNetDb = Arc<RwLock<NetDb>>;
pub type SharedSecDb = Arc<RwLock<SecDb>>;

/// Allocate an empty set of shared databases (one "machine"'s segments).
pub fn shared_dbs() -> (SharedSysDb, SharedNetDb, SharedSecDb) {
    (
        Arc::new(RwLock::new(SysDb::default())),
        Arc::new(RwLock::new(NetDb::default())),
        Arc::new(RwLock::new(SecDb::default())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_proto::HostName;

    fn report(ip: Ip, load: f64) -> ServerStatusReport {
        let mut r = ServerStatusReport::empty(HostName::new("h"), ip);
        r.load1 = load;
        r
    }

    #[test]
    fn upsert_updates_existing_addresses() {
        let mut db = SysDb::default();
        let ip = Ip::new(10, 0, 0, 1);
        db.upsert(report(ip, 0.1), SimTime::from_secs(1));
        db.upsert(report(ip, 0.9), SimTime::from_secs(2));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(ip).unwrap().report.load1, 0.9);
        assert_eq!(db.get(ip).unwrap().recorded_at, SimTime::from_secs(2));
    }

    #[test]
    fn expiry_drops_only_stale_records() {
        let mut db = SysDb::default();
        db.upsert(report(Ip::new(10, 0, 0, 1), 0.0), SimTime::from_secs(0));
        db.upsert(report(Ip::new(10, 0, 0, 2), 0.0), SimTime::from_secs(9));
        let dropped = db.expire(SimTime::from_secs(10), SimDuration::from_secs(6));
        assert_eq!(dropped, vec![Ip::new(10, 0, 0, 1)]);
        assert!(db.get(Ip::new(10, 0, 0, 1)).is_none());
        assert!(db.get(Ip::new(10, 0, 0, 2)).is_some());
    }

    #[test]
    fn expiry_keeps_a_record_aged_exactly_max_age() {
        let mut db = SysDb::default();
        let ip = Ip::new(10, 0, 0, 3);
        db.upsert(report(ip, 0.0), SimTime::from_secs(4));
        // Aged exactly max_age: kept (eviction is strictly-older-than).
        let dropped = db.expire(SimTime::from_secs(10), SimDuration::from_secs(6));
        assert!(dropped.is_empty());
        assert!(db.get(ip).is_some());
        // One nanosecond past the boundary: evicted.
        let just_past = SimTime::from_secs(10) + SimDuration::from_nanos(1);
        let dropped = db.expire(just_past, SimDuration::from_secs(6));
        assert_eq!(dropped, vec![ip]);
        assert!(db.get(ip).is_none());
    }

    proptest::proptest! {
        /// Eviction accounting: `expire` returns exactly the addresses it
        /// removed — `len(before) == len(after) + evicted.len()` — the
        /// evicted list is address-ordered, and every survivor is at most
        /// `max_age` old.
        #[test]
        fn expire_accounts_for_every_eviction(
            ages in proptest::collection::vec(0u64..30, 0..20),
            max_age in 1u64..25,
        ) {
            let now = SimTime::from_secs(40);
            let mut db = SysDb::default();
            for (i, &age) in ages.iter().enumerate() {
                let ip = Ip::new(10, 0, (i / 256) as u8, (i % 256) as u8);
                db.upsert(report(ip, 0.0), SimTime::from_secs(40 - age));
            }
            let before = db.len();
            let max_age = SimDuration::from_secs(max_age);
            let evicted = db.expire(now, max_age);
            proptest::prop_assert_eq!(before, db.len() + evicted.len());
            let mut sorted = evicted.clone();
            sorted.sort();
            proptest::prop_assert_eq!(&evicted, &sorted);
            for (_, r) in db.iter() {
                proptest::prop_assert!(now.since(r.recorded_at) <= max_age);
            }
            for ip in evicted {
                proptest::prop_assert!(db.get(ip).is_none());
            }
        }

        /// The sharded sweep is an exact regrouping of the flat one: the
        /// per-shard evictions sum to the old global count, every address
        /// lands in the shard its /24 prefix names, and the sharded /
        /// flat walks agree record for record. Pins the ISSUE 10 bugfix:
        /// `wizard-stale-evictions` must not change meaning.
        #[test]
        fn per_shard_evictions_sum_to_the_flat_count(
            ages in proptest::collection::vec(0u64..30, 0..40),
            max_age in 1u64..25,
        ) {
            let now = SimTime::from_secs(40);
            let mut flat = SysDb::default();
            let mut sharded = SysDb::default();
            for (i, &age) in ages.iter().enumerate() {
                // Spread addresses over several /24s.
                let ip = Ip::new(10, (i % 3) as u8, (i % 5) as u8, (i % 250) as u8 + 1);
                flat.upsert(report(ip, 0.0), SimTime::from_secs(40 - age));
                sharded.upsert(report(ip, 0.0), SimTime::from_secs(40 - age));
            }
            let max_age = SimDuration::from_secs(max_age);
            let flat_evicted = flat.expire(now, max_age);
            let by_shard = sharded.expire_by_shard(now, max_age);
            let total: usize = by_shard.iter().map(|(_, ips)| ips.len()).sum();
            proptest::prop_assert_eq!(total, flat_evicted.len());
            let flattened: Vec<Ip> =
                by_shard.iter().flat_map(|(_, ips)| ips.iter().copied()).collect();
            proptest::prop_assert_eq!(&flattened, &flat_evicted);
            for (key, ips) in &by_shard {
                for ip in ips {
                    proptest::prop_assert_eq!(subnet_of(*ip), *key);
                }
            }
            proptest::prop_assert_eq!(sharded.len(), flat.len());
        }
    }

    #[test]
    fn snapshot_is_address_ordered() {
        let mut db = SysDb::default();
        db.upsert(report(Ip::new(10, 0, 0, 9), 0.0), SimTime::ZERO);
        db.upsert(report(Ip::new(10, 0, 0, 1), 0.0), SimTime::ZERO);
        let snap = db.snapshot();
        assert!(snap[0].ip < snap[1].ip);
    }

    #[test]
    fn iteration_order_spans_shards_in_address_order() {
        let mut db = SysDb::default();
        let ips = [
            Ip::new(192, 168, 5, 1),
            Ip::new(10, 0, 0, 7),
            Ip::new(10, 0, 1, 2),
            Ip::new(10, 0, 0, 200),
            Ip::new(137, 132, 81, 10),
        ];
        for ip in ips {
            db.upsert(report(ip, 0.0), SimTime::ZERO);
        }
        let seen: Vec<Ip> = db.iter().map(|(ip, _)| *ip).collect();
        let mut want = ips.to_vec();
        want.sort();
        assert_eq!(seen, want);
        assert_eq!(db.shard_count(), 4);
        assert_eq!(db.len(), 5);
    }

    #[test]
    fn shard_summaries_cover_rows_and_tighten_on_expire() {
        let mut db = SysDb::default();
        let a = Ip::new(10, 0, 0, 1);
        let b = Ip::new(10, 0, 0, 2);
        db.upsert(report(a, 5.0), SimTime::from_secs(1));
        db.upsert(report(b, 1.0), SimTime::from_secs(2));
        let (_, shard) = db.iter_shards().next().unwrap();
        assert_eq!(shard.summary().count, 2);
        assert_eq!(shard.summary().newest_recorded_at, SimTime::from_secs(2));
        assert_eq!(shard.summary().ranges.range_of("host_system_load1"), Some((1.0, 5.0)));

        // Overwrite the hot row with a calmer report: widen-only leaves
        // the old maximum in place (conservative superset)…
        db.upsert(report(a, 2.0), SimTime::from_secs(3));
        let (_, shard) = db.iter_shards().next().unwrap();
        assert_eq!(shard.summary().ranges.range_of("host_system_load1"), Some((1.0, 5.0)));

        // …and the sweep recomputes the exact range.
        db.expire(SimTime::from_secs(3), SimDuration::from_secs(60));
        let (_, shard) = db.iter_shards().next().unwrap();
        assert_eq!(shard.summary().ranges.range_of("host_system_load1"), Some((1.0, 2.0)));
        assert_eq!(shard.summary().count, 2);
    }

    #[test]
    fn emptied_shards_are_dropped() {
        let mut db = SysDb::default();
        db.upsert(report(Ip::new(10, 0, 0, 1), 0.0), SimTime::ZERO);
        db.upsert(report(Ip::new(10, 0, 1, 1), 0.0), SimTime::from_secs(9));
        assert_eq!(db.shard_count(), 2);
        let by_shard = db.expire_by_shard(SimTime::from_secs(10), SimDuration::from_secs(6));
        assert_eq!(by_shard, vec![([10, 0, 0], vec![Ip::new(10, 0, 0, 1)])]);
        assert_eq!(db.shard_count(), 1);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn report_vars_resolve_for_every_listed_name() {
        let r = report(Ip::new(10, 0, 0, 1), 0.5);
        for name in REPORT_VARS {
            assert!(report_var(&r, name).is_some(), "unresolved report var {name}");
        }
        assert_eq!(report_var(&r, "host_security_level"), None);
        assert_eq!(report_var(&r, "monitor_network_bw"), None);
    }

    #[test]
    fn replace_all_mirrors_the_transmitter() {
        let mut db = SysDb::default();
        db.upsert(report(Ip::new(10, 0, 0, 1), 0.0), SimTime::ZERO);
        db.replace_all(vec![report(Ip::new(10, 0, 0, 7), 0.5)], SimTime::from_secs(3));
        assert_eq!(db.len(), 1);
        assert!(db.get(Ip::new(10, 0, 0, 7)).is_some());
    }

    #[test]
    fn netdb_keys_are_directional() {
        let mut db = NetDb::default();
        let a = Ip::new(192, 168, 1, 1);
        let b = Ip::new(192, 168, 2, 1);
        db.upsert(NetPathRecord {
            from_monitor: a,
            to_monitor: b,
            delay_ms: 1.0,
            bw_mbps: 90.0,
            timestamp_ns: 0,
        });
        db.upsert(NetPathRecord {
            from_monitor: b,
            to_monitor: a,
            delay_ms: 2.0,
            bw_mbps: 50.0,
            timestamp_ns: 0,
        });
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(a, b).unwrap().bw_mbps, 90.0);
        assert_eq!(db.get(b, a).unwrap().bw_mbps, 50.0);
        assert!(db.get(a, a).is_none());
    }

    #[test]
    fn secdb_levels() {
        let mut db = SecDb::default();
        let ip = Ip::new(192, 168, 3, 1);
        db.upsert(SecurityRecord { host: "helene".into(), ip, level: 4 });
        assert_eq!(db.level_of(ip), Some(4));
        assert_eq!(db.level_of(Ip::new(1, 1, 1, 1)), None);
    }

    #[test]
    fn shared_dbs_are_independently_lockable() {
        let (sys, net, sec) = shared_dbs();
        let _s = sys.write();
        let _n = net.read();
        let _e = sec.read();
        assert!(_n.is_empty());
        assert!(_e.is_empty());
    }
}
