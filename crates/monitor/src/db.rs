//! The three status databases (`sysdb`, `netdb`, `secdb` of Fig 3.10).
//!
//! In the thesis these are System-V shared-memory segments guarded by
//! semaphores (Table 4.3), written by the monitors and read by the
//! transmitter (or, on the wizard machine, written by the receiver and
//! read by the wizard). Here each database is an `Arc<RwLock<...>>`: the
//! same concurrent-reader/exclusive-writer discipline without the UB.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use smartsock_proto::{Ip, NetPathRecord, SecurityRecord, ServerStatusReport};
use smartsock_sim::{SimDuration, SimTime};

/// A status report plus the time the monitor recorded it (§3.2.2: "each
/// server status record ... is tagged with the time stamp").
#[derive(Clone, Debug, PartialEq)]
pub struct TimedReport {
    pub report: ServerStatusReport,
    pub recorded_at: SimTime,
}

/// The server status database, keyed by server address.
#[derive(Clone, Debug, Default)]
pub struct SysDb {
    records: BTreeMap<Ip, TimedReport>,
}

impl SysDb {
    /// Insert or update one server's record (§3.2.2: update if the address
    /// exists, insert otherwise).
    pub fn upsert(&mut self, report: ServerStatusReport, now: SimTime) {
        self.records.insert(report.ip, TimedReport { report, recorded_at: now });
    }

    /// Drop records older than `max_age` (the stale sweep; with the 3×
    /// interval policy of §4.1, `max_age = 3 * probe_interval`). Returns
    /// the evicted server addresses, in address order, so callers can log
    /// and account for exactly *which* servers went dark.
    ///
    /// Boundary semantics: the comparison is `age <= max_age`, so a record
    /// aged *exactly* `max_age` is **kept** — eviction requires strictly
    /// more than `max_age` of silence. With the §4.1 policy this means a
    /// probe whose report lands on the very tick of its third missed
    /// interval still counts as alive; the sweep one interval later evicts
    /// it. Pinned by `expiry_keeps_a_record_aged_exactly_max_age`.
    pub fn expire(&mut self, now: SimTime, max_age: SimDuration) -> Vec<Ip> {
        let mut evicted = Vec::new();
        self.records.retain(|&ip, r| {
            let keep = now.since(r.recorded_at) <= max_age;
            if !keep {
                evicted.push(ip);
            }
            keep
        });
        evicted
    }

    pub fn get(&self, ip: Ip) -> Option<&TimedReport> {
        self.records.get(&ip)
    }

    /// Live records in deterministic (address) order — the order the
    /// wizard scans candidates in.
    pub fn snapshot(&self) -> Vec<ServerStatusReport> {
        self.records.values().map(|t| t.report.clone()).collect()
    }

    /// Live records plus each one's age (in nanoseconds) at `now`, in
    /// address order — the transmitter's snapshot shape. Shipping the age
    /// instead of the raw timestamp keeps the wire format clock-free: the
    /// receiver reconstructs `recorded_at = arrival - age` in its own
    /// timeline, so the wizard's staleness discount sees true row ages.
    pub fn aged_snapshot(&self, now: SimTime) -> Vec<(ServerStatusReport, u64)> {
        self.records
            .values()
            .map(|t| (t.report.clone(), now.since(t.recorded_at).as_nanos()))
            .collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Ip, &TimedReport)> {
        self.records.iter()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replace the whole database (receiver side: §3.5.2 keeps the wizard
    /// machine's copy identical to the transmitter's).
    pub fn replace_all(&mut self, reports: Vec<ServerStatusReport>, now: SimTime) {
        self.records.clear();
        for r in reports {
            self.upsert(r, now);
        }
    }
}

/// The network metrics database: one record per (from, to) monitor pair.
#[derive(Clone, Debug, Default)]
pub struct NetDb {
    records: BTreeMap<(Ip, Ip), NetPathRecord>,
}

impl NetDb {
    pub fn upsert(&mut self, rec: NetPathRecord) {
        self.records.insert((rec.from_monitor, rec.to_monitor), rec);
    }

    pub fn get(&self, from: Ip, to: Ip) -> Option<&NetPathRecord> {
        self.records.get(&(from, to))
    }

    pub fn snapshot(&self) -> Vec<NetPathRecord> {
        self.records.values().copied().collect()
    }

    pub fn replace_all(&mut self, recs: Vec<NetPathRecord>) {
        self.records.clear();
        for r in recs {
            self.upsert(r);
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The security database: clearance level per host.
#[derive(Clone, Debug, Default)]
pub struct SecDb {
    records: BTreeMap<Ip, SecurityRecord>,
}

impl SecDb {
    pub fn upsert(&mut self, rec: SecurityRecord) {
        self.records.insert(rec.ip, rec);
    }

    pub fn level_of(&self, ip: Ip) -> Option<i32> {
        self.records.get(&ip).map(|r| r.level)
    }

    pub fn snapshot(&self) -> Vec<SecurityRecord> {
        self.records.values().cloned().collect()
    }

    pub fn replace_all(&mut self, recs: Vec<SecurityRecord>) {
        self.records.clear();
        for r in recs {
            self.upsert(r);
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Shared handles — the "shared memory segments".
pub type SharedSysDb = Arc<RwLock<SysDb>>;
pub type SharedNetDb = Arc<RwLock<NetDb>>;
pub type SharedSecDb = Arc<RwLock<SecDb>>;

/// Allocate an empty set of shared databases (one "machine"'s segments).
pub fn shared_dbs() -> (SharedSysDb, SharedNetDb, SharedSecDb) {
    (
        Arc::new(RwLock::new(SysDb::default())),
        Arc::new(RwLock::new(NetDb::default())),
        Arc::new(RwLock::new(SecDb::default())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_proto::HostName;

    fn report(ip: Ip, load: f64) -> ServerStatusReport {
        let mut r = ServerStatusReport::empty(HostName::new("h"), ip);
        r.load1 = load;
        r
    }

    #[test]
    fn upsert_updates_existing_addresses() {
        let mut db = SysDb::default();
        let ip = Ip::new(10, 0, 0, 1);
        db.upsert(report(ip, 0.1), SimTime::from_secs(1));
        db.upsert(report(ip, 0.9), SimTime::from_secs(2));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(ip).unwrap().report.load1, 0.9);
        assert_eq!(db.get(ip).unwrap().recorded_at, SimTime::from_secs(2));
    }

    #[test]
    fn expiry_drops_only_stale_records() {
        let mut db = SysDb::default();
        db.upsert(report(Ip::new(10, 0, 0, 1), 0.0), SimTime::from_secs(0));
        db.upsert(report(Ip::new(10, 0, 0, 2), 0.0), SimTime::from_secs(9));
        let dropped = db.expire(SimTime::from_secs(10), SimDuration::from_secs(6));
        assert_eq!(dropped, vec![Ip::new(10, 0, 0, 1)]);
        assert!(db.get(Ip::new(10, 0, 0, 1)).is_none());
        assert!(db.get(Ip::new(10, 0, 0, 2)).is_some());
    }

    #[test]
    fn expiry_keeps_a_record_aged_exactly_max_age() {
        let mut db = SysDb::default();
        let ip = Ip::new(10, 0, 0, 3);
        db.upsert(report(ip, 0.0), SimTime::from_secs(4));
        // Aged exactly max_age: kept (eviction is strictly-older-than).
        let dropped = db.expire(SimTime::from_secs(10), SimDuration::from_secs(6));
        assert!(dropped.is_empty());
        assert!(db.get(ip).is_some());
        // One nanosecond past the boundary: evicted.
        let just_past = SimTime::from_secs(10) + SimDuration::from_nanos(1);
        let dropped = db.expire(just_past, SimDuration::from_secs(6));
        assert_eq!(dropped, vec![ip]);
        assert!(db.get(ip).is_none());
    }

    proptest::proptest! {
        /// Eviction accounting: `expire` returns exactly the addresses it
        /// removed — `len(before) == len(after) + evicted.len()` — the
        /// evicted list is address-ordered, and every survivor is at most
        /// `max_age` old.
        #[test]
        fn expire_accounts_for_every_eviction(
            ages in proptest::collection::vec(0u64..30, 0..20),
            max_age in 1u64..25,
        ) {
            let now = SimTime::from_secs(40);
            let mut db = SysDb::default();
            for (i, &age) in ages.iter().enumerate() {
                let ip = Ip::new(10, 0, (i / 256) as u8, (i % 256) as u8);
                db.upsert(report(ip, 0.0), SimTime::from_secs(40 - age));
            }
            let before = db.len();
            let max_age = SimDuration::from_secs(max_age);
            let evicted = db.expire(now, max_age);
            proptest::prop_assert_eq!(before, db.len() + evicted.len());
            let mut sorted = evicted.clone();
            sorted.sort();
            proptest::prop_assert_eq!(&evicted, &sorted);
            for (_, r) in db.iter() {
                proptest::prop_assert!(now.since(r.recorded_at) <= max_age);
            }
            for ip in evicted {
                proptest::prop_assert!(db.get(ip).is_none());
            }
        }
    }

    #[test]
    fn snapshot_is_address_ordered() {
        let mut db = SysDb::default();
        db.upsert(report(Ip::new(10, 0, 0, 9), 0.0), SimTime::ZERO);
        db.upsert(report(Ip::new(10, 0, 0, 1), 0.0), SimTime::ZERO);
        let snap = db.snapshot();
        assert!(snap[0].ip < snap[1].ip);
    }

    #[test]
    fn replace_all_mirrors_the_transmitter() {
        let mut db = SysDb::default();
        db.upsert(report(Ip::new(10, 0, 0, 1), 0.0), SimTime::ZERO);
        db.replace_all(vec![report(Ip::new(10, 0, 0, 7), 0.5)], SimTime::from_secs(3));
        assert_eq!(db.len(), 1);
        assert!(db.get(Ip::new(10, 0, 0, 7)).is_some());
    }

    #[test]
    fn netdb_keys_are_directional() {
        let mut db = NetDb::default();
        let a = Ip::new(192, 168, 1, 1);
        let b = Ip::new(192, 168, 2, 1);
        db.upsert(NetPathRecord {
            from_monitor: a,
            to_monitor: b,
            delay_ms: 1.0,
            bw_mbps: 90.0,
            timestamp_ns: 0,
        });
        db.upsert(NetPathRecord {
            from_monitor: b,
            to_monitor: a,
            delay_ms: 2.0,
            bw_mbps: 50.0,
            timestamp_ns: 0,
        });
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(a, b).unwrap().bw_mbps, 90.0);
        assert_eq!(db.get(b, a).unwrap().bw_mbps, 50.0);
        assert!(db.get(a, a).is_none());
    }

    #[test]
    fn secdb_levels() {
        let mut db = SecDb::default();
        let ip = Ip::new(192, 168, 3, 1);
        db.upsert(SecurityRecord { host: "helene".into(), ip, level: 4 });
        assert_eq!(db.level_of(ip), Some(4));
        assert_eq!(db.level_of(Ip::new(1, 1, 1, 1)), None);
    }

    #[test]
    fn shared_dbs_are_independently_lockable() {
        let (sys, net, sec) = shared_dbs();
        let _s = sys.write();
        let _n = net.read();
        let _e = sec.read();
        assert!(_n.is_empty());
        assert!(_e.is_empty());
    }
}
