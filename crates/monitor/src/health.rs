//! Server health scores and the quarantine state machine (DESIGN.md §11).
//!
//! The status databases say what a server *claims* about itself; this
//! table says how assignments to it actually *went*. Client outcome
//! reports ([`smartsock_proto::OutcomeReport`]) feed a per-server score in
//! `[0, 1]` with exponential decay on simulation time, and the score
//! drives a four-state machine:
//!
//! ```text
//!              failure (score < suspect)            score/streak low
//!   Healthy ───────────────────────────▶ Suspect ───────────────────▶ Quarantined
//!      ▲                                   │  ▲                            │
//!      │ score recovers                    │  │ failure while              │ quarantine
//!      │                                   │  │ on probation               │ expires
//!      │         K successes, or the       ▼  │ (duration doubles)         ▼
//!      └────── probation window ends ── Probation ◀──────────────────────┘
//! ```
//!
//! Quarantined servers are excluded from `Wizard::select` outright;
//! probation servers are selectable again (ordered last by their low
//! score) so the system re-learns whether they recovered. Everything is a
//! pure function of the reported outcomes and simulation time — no RNG, no
//! wall clock — so runs stay byte-reproducible.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use smartsock_proto::{Ip, OutcomeKind};
use smartsock_sim::{SimDuration, SimTime};

/// Tunables for the health table. The defaults make one failure suspect a
/// server and two consecutive failures quarantine it, with quarantine
/// doubling on re-offence up to a cap.
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Half-life of the score's relaxation toward 1.0 (forgiveness) and of
    /// the history weight in updates.
    pub half_life: SimDuration,
    /// Gain of one observation: `score += gain * (sample - score)`.
    pub gain: f64,
    /// Below this (after a failure) a healthy server becomes suspect.
    pub suspect_threshold: f64,
    /// Below this a server is quarantined outright.
    pub quarantine_threshold: f64,
    /// This many consecutive failures quarantine regardless of score.
    pub failure_streak: u32,
    /// First quarantine duration; doubles on each re-offence.
    pub quarantine_base: SimDuration,
    /// Cap on the doubled quarantine duration.
    pub quarantine_max: SimDuration,
    /// How long a server stays on probation with no verdict before it is
    /// considered healthy again.
    pub probation_window: SimDuration,
    /// Successes on probation that clear it early.
    pub probation_successes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            half_life: SimDuration::from_secs(16),
            gain: 0.5,
            suspect_threshold: 0.6,
            quarantine_threshold: 0.3,
            failure_streak: 3,
            quarantine_base: SimDuration::from_secs(8),
            quarantine_max: SimDuration::from_secs(64),
            probation_window: SimDuration::from_secs(10),
            probation_successes: 2,
        }
    }
}

/// The four observable states (time parameters resolved away).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateKind {
    Healthy,
    Suspect,
    Quarantined,
    Probation,
}

impl StateKind {
    /// Stable kebab-case label for telemetry attrs.
    pub fn label(self) -> &'static str {
        match self {
            StateKind::Healthy => "healthy",
            StateKind::Suspect => "suspect",
            StateKind::Quarantined => "quarantined",
            StateKind::Probation => "probation",
        }
    }
}

/// Internal state with its clocks.
#[derive(Clone, Copy, Debug, PartialEq)]
enum State {
    Healthy,
    Suspect,
    Quarantined { until: SimTime },
    Probation { until: SimTime, successes: u32 },
}

impl State {
    fn kind(self) -> StateKind {
        match self {
            State::Healthy => StateKind::Healthy,
            State::Suspect => StateKind::Suspect,
            State::Quarantined { .. } => StateKind::Quarantined,
            State::Probation { .. } => StateKind::Probation,
        }
    }
}

/// One observed state-machine transition, for telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    pub ip: Ip,
    pub from: StateKind,
    pub to: StateKind,
}

#[derive(Clone, Debug)]
struct HostHealth {
    score: f64,
    updated_at: SimTime,
    state: State,
    streak: u32,
    /// Next quarantine duration (doubles on re-offence).
    next_quarantine: SimDuration,
}

/// The health-score table: one entry per server that ever had an outcome
/// reported. Unknown servers read as healthy with score 1.0.
#[derive(Clone, Debug, Default)]
pub struct HealthTable {
    cfg: HealthConfig,
    hosts: BTreeMap<Ip, HostHealth>,
}

impl HealthTable {
    pub fn new(cfg: HealthConfig) -> HealthTable {
        HealthTable { cfg, hosts: BTreeMap::new() }
    }

    /// Number of servers with recorded history.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The decayed score at `now`: relaxes toward 1.0 with the configured
    /// half-life, so old sins are forgiven even without fresh evidence.
    pub fn score(&self, ip: Ip, now: SimTime) -> f64 {
        match self.hosts.get(&ip) {
            Some(h) => relax(h.score, h.updated_at, now, self.cfg.half_life),
            None => 1.0,
        }
    }

    /// The state the machine would be in at `now`, resolving time-based
    /// transitions (quarantine expiry → probation, probation window end →
    /// healthy) *without* mutating. Selection uses this so a read path
    /// never changes state behind the telemetry's back.
    pub fn effective_state(&self, ip: Ip, now: SimTime) -> StateKind {
        match self.hosts.get(&ip) {
            None => StateKind::Healthy,
            Some(h) => resolve(h.state, now, self.cfg.probation_window).kind(),
        }
    }

    /// Whether selection may offer this server at `now`.
    pub fn selectable(&self, ip: Ip, now: SimTime) -> bool {
        self.effective_state(ip, now) != StateKind::Quarantined
    }

    /// Materialize every pending time-based transition up to `now`.
    /// Returns them in address order; the caller (the wizard's sweep)
    /// turns them into telemetry events.
    pub fn poll(&mut self, now: SimTime) -> Vec<Transition> {
        let window = self.cfg.probation_window;
        let mut out = Vec::new();
        for (&ip, h) in self.hosts.iter_mut() {
            let resolved = resolve(h.state, now, window);
            if resolved.kind() != h.state.kind() {
                out.push(Transition { ip, from: h.state.kind(), to: resolved.kind() });
            }
            h.state = resolved;
        }
        out
    }

    /// Feed one outcome. Returns the transitions it caused (a pending
    /// time-based one first, then the observation's own, if any).
    pub fn record(&mut self, ip: Ip, outcome: OutcomeKind, now: SimTime) -> Vec<Transition> {
        let cfg = self.cfg.clone();
        let h = self.hosts.entry(ip).or_insert_with(|| HostHealth {
            score: 1.0,
            updated_at: now,
            state: State::Healthy,
            streak: 0,
            next_quarantine: cfg.quarantine_base,
        });
        let mut transitions = Vec::new();
        let resolved = resolve(h.state, now, cfg.probation_window);
        if resolved.kind() != h.state.kind() {
            transitions.push(Transition { ip, from: h.state.kind(), to: resolved.kind() });
        }
        h.state = resolved;

        // Score update: relax history toward 1.0, then pull toward the
        // sample with the observation gain.
        let sample = if outcome.is_failure() { 0.0 } else { 1.0 };
        let relaxed = relax(h.score, h.updated_at, now, cfg.half_life);
        h.score = relaxed + cfg.gain * (sample - relaxed);
        h.updated_at = now;

        let before = h.state;
        if outcome.is_failure() {
            h.streak = h.streak.saturating_add(1);
            let quarantine = |h: &mut HostHealth| {
                let until = now + h.next_quarantine;
                h.next_quarantine =
                    SimDuration::from_nanos(h.next_quarantine.as_nanos().saturating_mul(2))
                        .min(cfg.quarantine_max);
                State::Quarantined { until }
            };
            h.state = match h.state {
                // A failure on probation re-quarantines immediately, for
                // twice as long as before.
                State::Probation { .. } => quarantine(h),
                State::Quarantined { until } => State::Quarantined { until },
                _ if h.score < cfg.quarantine_threshold || h.streak >= cfg.failure_streak => {
                    quarantine(h)
                }
                _ if h.score < cfg.suspect_threshold => State::Suspect,
                other => other,
            };
        } else {
            h.streak = 0;
            h.state = match h.state {
                State::Probation { until, successes } => {
                    let successes = successes + 1;
                    if successes >= cfg.probation_successes {
                        h.next_quarantine = cfg.quarantine_base;
                        State::Healthy
                    } else {
                        State::Probation { until, successes }
                    }
                }
                State::Suspect if h.score >= cfg.suspect_threshold => State::Healthy,
                other => other,
            };
        }
        if h.state.kind() != before.kind() {
            transitions.push(Transition { ip, from: before.kind(), to: h.state.kind() });
        }
        transitions
    }

    /// Servers currently quarantined at `now`, in address order.
    pub fn quarantined(&self, now: SimTime) -> Vec<Ip> {
        self.hosts
            .keys()
            .copied()
            .filter(|&ip| self.effective_state(ip, now) == StateKind::Quarantined)
            .collect()
    }
}

/// Relaxation toward 1.0: `1 - (1 - score) * 0.5^(Δt / half_life)`.
fn relax(score: f64, updated_at: SimTime, now: SimTime, half_life: SimDuration) -> f64 {
    let dt = now.since(updated_at).as_secs_f64();
    let hl = half_life.as_secs_f64();
    if hl <= 0.0 || dt <= 0.0 {
        return score;
    }
    1.0 - (1.0 - score) * 0.5f64.powf(dt / hl)
}

/// Resolve time-based transitions: quarantine expiry opens a probation
/// window; an uneventful probation window ends healthy.
fn resolve(state: State, now: SimTime, probation_window: SimDuration) -> State {
    match state {
        State::Quarantined { until } if now >= until => {
            let probation_until = until + probation_window;
            if now >= probation_until {
                State::Healthy
            } else {
                State::Probation { until: probation_until, successes: 0 }
            }
        }
        State::Probation { until, .. } if now >= until => State::Healthy,
        other => other,
    }
}

/// Shared handle, same discipline as the status databases.
pub type SharedHealthDb = Arc<RwLock<HealthTable>>;

/// Allocate a fresh shared health table.
pub fn shared_health(cfg: HealthConfig) -> SharedHealthDb {
    Arc::new(RwLock::new(HealthTable::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip() -> Ip {
        Ip::new(192, 168, 4, 11)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn unknown_servers_read_healthy_with_full_score() {
        let table = HealthTable::default();
        assert_eq!(table.score(ip(), t(5)), 1.0);
        assert_eq!(table.effective_state(ip(), t(5)), StateKind::Healthy);
        assert!(table.selectable(ip(), t(5)));
    }

    #[test]
    fn one_failure_suspects_two_quarantine() {
        let mut table = HealthTable::default();
        let tr = table.record(ip(), OutcomeKind::Timeout, t(1));
        assert_eq!(tr.len(), 1);
        assert_eq!((tr[0].from, tr[0].to), (StateKind::Healthy, StateKind::Suspect));
        let tr = table.record(ip(), OutcomeKind::ConnectFailed, t(2));
        assert_eq!((tr[0].from, tr[0].to), (StateKind::Suspect, StateKind::Quarantined));
        assert!(!table.selectable(ip(), t(3)));
    }

    #[test]
    fn successes_keep_a_server_healthy_and_scores_decay_up() {
        let mut table = HealthTable::default();
        for k in 0..5 {
            assert!(table.record(ip(), OutcomeKind::Completed, t(k)).is_empty());
        }
        assert_eq!(table.effective_state(ip(), t(5)), StateKind::Healthy);
        // One failure halves the score; it then relaxes back toward 1.0.
        table.record(ip(), OutcomeKind::Timeout, t(6));
        let just_after = table.score(ip(), t(6));
        let much_later = table.score(ip(), t(6 + 64));
        assert!(just_after < 0.6, "post-failure score {just_after}");
        assert!(much_later > 0.9, "decayed score {much_later}");
    }

    #[test]
    fn quarantine_expires_into_probation_then_healthy() {
        let mut table = HealthTable::default();
        table.record(ip(), OutcomeKind::Timeout, t(1));
        table.record(ip(), OutcomeKind::Timeout, t(2));
        assert_eq!(table.effective_state(ip(), t(3)), StateKind::Quarantined);
        // quarantine_base = 8 s: released at t=10 into a 10 s window.
        assert_eq!(table.effective_state(ip(), t(11)), StateKind::Probation);
        assert!(table.selectable(ip(), t(11)), "probation servers are selectable");
        // The window ends with no verdict: healthy again.
        assert_eq!(table.effective_state(ip(), t(25)), StateKind::Healthy);
        // poll() materializes the same answer and reports the transition.
        let tr = table.poll(t(25));
        assert_eq!(tr.len(), 1);
        assert_eq!((tr[0].from, tr[0].to), (StateKind::Quarantined, StateKind::Healthy));
    }

    #[test]
    fn probation_failure_requarantines_for_twice_as_long() {
        let mut table = HealthTable::default();
        table.record(ip(), OutcomeKind::Timeout, t(1));
        table.record(ip(), OutcomeKind::Timeout, t(2)); // quarantined until t=10
        let tr = table.record(ip(), OutcomeKind::ConnectFailed, t(11)); // on probation
        assert!(tr
            .iter()
            .any(|x| x.from == StateKind::Probation && x.to == StateKind::Quarantined));
        // Doubled: 16 s from t=11.
        assert_eq!(table.effective_state(ip(), t(26)), StateKind::Quarantined);
        assert_eq!(table.effective_state(ip(), t(27)), StateKind::Probation);
    }

    #[test]
    fn probation_successes_clear_early_and_reset_the_doubling() {
        let mut table = HealthTable::default();
        table.record(ip(), OutcomeKind::Timeout, t(1));
        table.record(ip(), OutcomeKind::Timeout, t(2)); // until t=10
        table.record(ip(), OutcomeKind::Completed, t(11));
        let tr = table.record(ip(), OutcomeKind::Completed, t(12));
        assert!(tr.iter().any(|x| x.to == StateKind::Healthy));
        assert_eq!(table.effective_state(ip(), t(12)), StateKind::Healthy);
    }

    #[test]
    fn quarantined_listing_is_address_ordered() {
        let mut table = HealthTable::default();
        for last in [9u8, 3, 6] {
            let ip = Ip::new(10, 0, 0, last);
            table.record(ip, OutcomeKind::Timeout, t(1));
            table.record(ip, OutcomeKind::Timeout, t(2));
        }
        let q = table.quarantined(t(3));
        assert_eq!(q, vec![Ip::new(10, 0, 0, 3), Ip::new(10, 0, 0, 6), Ip::new(10, 0, 0, 9)]);
    }
}
