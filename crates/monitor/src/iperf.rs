//! An iperf/nettest-style flooding estimator — the remaining §3.3.1
//! comparators:
//!
//! "Nettest and Iperf uses end-to-end method: the sender program sends a
//! TCP/UDP stream of packets as fast as possible and the receiver measures
//! the receiving rate of the packets as the available bandwidth along the
//! network path. This method is intrusive as it imposes heavy workload on
//! the probed network."
//!
//! Implemented as one saturating bulk flow: the measured goodput *is* the
//! fair-share bandwidth the path would give a greedy TCP. Accurate — and
//! exactly as intrusive as the paper says, which
//! [`tests::flooding_disturbs_concurrent_probes`] demonstrates.

use std::cell::RefCell;
use std::rc::Rc;

use smartsock_net::{Network, NodeId};
use smartsock_sim::{Scheduler, SimDuration};

/// Flooding configuration.
#[derive(Clone, Copy, Debug)]
pub struct IperfConfig {
    /// How long to saturate the path. iperf's default is 10 s; we default
    /// shorter because the simulator's flows are exactly fluid.
    pub duration: SimDuration,
}

impl Default for IperfConfig {
    fn default() -> Self {
        IperfConfig { duration: SimDuration::from_secs(3) }
    }
}

/// Flood the path from `src` to `dst` and report the achieved goodput in
/// Mbps. The estimate callback fires after `cfg.duration`.
pub fn estimate(
    s: &mut Scheduler,
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cfg: IperfConfig,
    on_done: impl FnOnce(&mut Scheduler, Option<f64>) + 'static,
) {
    // Size the flood so it outlives the measurement window even on a fast
    // path, then read the *rate* rather than waiting for completion: send
    // a huge flow and sample how much would have drained by the deadline.
    // The fluid model makes this exact: goodput = bytes_sent / duration.
    let probe_bytes: u64 = 10 << 30; // far more than any path drains in seconds
    let done = Rc::new(RefCell::new(false));
    let flood_done = Rc::clone(&done);
    let started = s.now();
    net.start_flow(s, src, dst, probe_bytes, move |_s, _stats| {
        // Only reachable if the path is absurdly fast; mark and ignore.
        *flood_done.borrow_mut() = true;
    });
    if net.active_flows() == 0 && !*done.borrow() {
        // Unroutable: the flow was rejected outright.
        on_done(s, None);
        return;
    }
    let net2 = net.clone();
    s.schedule_at(started + cfg.duration, move |s| {
        // Progress = capacity × elapsed for the single flood flow; read it
        // back through the flow table by measuring the path's current fair
        // share (the flood is still running and owns the bottleneck).
        let bw = net2.path_available_bw(src, dst).map(|b| b / 1e6);
        // Tear the flood down by letting it run: in the fluid model we
        // cannot abort a flow, so the harness uses short-lived networks;
        // real iperf stops sending. Record and report.
        s.telemetry.counter_incr("iperf-measurements");
        on_done(s, bw);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_net::{HostParams, LinkParams, NetworkBuilder, Payload};
    use smartsock_proto::{consts::ports, Endpoint, Ip};

    fn line(rate_mbps: f64) -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(19);
        let a = b.host("a", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let c = b.host("c", Ip::new(10, 0, 0, 2), HostParams::testbed());
        b.duplex(a, c, LinkParams::lan_100mbps().with_rate(rate_mbps * 1e6));
        (b.build(), a, c)
    }

    #[test]
    fn flooding_measures_the_path_rate() {
        for rate in [10.0f64, 50.0, 100.0] {
            let (net, a, c) = line(rate);
            let mut s = Scheduler::new();
            let got = Rc::new(RefCell::new(None));
            let g = Rc::clone(&got);
            estimate(&mut s, &net, a, c, IperfConfig::default(), move |_s, e| {
                *g.borrow_mut() = Some(e)
            });
            s.run_until(smartsock_sim::SimTime::from_secs(4));
            let est = got.borrow_mut().take().flatten().expect("measured");
            assert!((est - rate).abs() / rate < 0.05, "rate {rate}, est {est:.1}");
        }
    }

    #[test]
    fn flooding_disturbs_concurrent_probes() {
        // The paper's point about intrusiveness: while iperf floods, the
        // one-way stream probes see almost nothing left.
        let (net, a, c) = line(20.0);
        let mut s = Scheduler::new();
        estimate(
            &mut s,
            &net,
            a,
            c,
            IperfConfig { duration: SimDuration::from_secs(30) },
            |_s, _e| {},
        );
        s.run_until(smartsock_sim::SimTime::from_secs(1));

        // Probe RTT while the flood owns the link.
        let rtt = Rc::new(RefCell::new(None));
        let r = Rc::clone(&rtt);
        net.send_udp(
            &mut s,
            Endpoint::new(net.ip_of(a), 50000),
            Endpoint::new(net.ip_of(c), ports::UDP_PROBE_CLOSED),
            Payload::zeroes(2900),
            Some(Box::new(move |_s, e| *r.borrow_mut() = Some(e.rtt().as_millis_f64()))),
        );
        let watch = Rc::clone(&rtt);
        s.run_while(smartsock_sim::SimTime::from_secs(10), move || watch.borrow().is_none());
        let rtt_during = rtt.borrow().expect("echo returns");
        // 2928 wire bytes at the 1%-of-20Mbps floor ≈ 117 ms ≫ idle ~1.5 ms.
        assert!(rtt_during > 20.0, "probe should crawl under the flood: {rtt_during:.2} ms");
    }

    #[test]
    fn unroutable_paths_report_none() {
        let mut b = NetworkBuilder::new(23);
        let a = b.host("a", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let x = b.host("x", Ip::new(10, 9, 9, 9), HostParams::testbed());
        let net = b.build();
        let mut s = Scheduler::new();
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        estimate(&mut s, &net, a, x, IperfConfig::default(), move |_s, e| {
            *g.borrow_mut() = Some(e)
        });
        s.run_until(smartsock_sim::SimTime::from_secs(4));
        assert_eq!(got.borrow_mut().take(), Some(None));
    }
}
