//! The one-way UDP stream bandwidth estimator — pure math (paper §3.3.2).
//!
//! The method sends two probe datagrams of sizes `S1 < S2` to a closed UDP
//! port, times the ICMP port-unreachable echoes (`T1`, `T2`) and applies
//! Equation (3.5):
//!
//! ```text
//! B = (S2 − S1) / (T2 − T1)
//! ```
//!
//! Probe-size rules derived in the paper:
//!
//! 1. both sizes must exceed the MTU, or `Speed_init` contaminates the
//!    slope (Formula 3.7: `1/B' = 1/B + 1/Speed_init`);
//! 2. sizes should be as small as possible (fewer fragments, less cross
//!    traffic exposure);
//! 3. both sizes should generate the *same number of fragments* so the
//!    per-fragment overheads cancel in `T2 − T1`.
//!
//! The default pair (1600, 2900) satisfies all three at MTU 1500 and is
//! exactly the deployment setting of §5.2.

use smartsock_proto::consts::sizes;
use smartsock_sim::SimDuration;

/// A probe-pair specification: the two payload sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbePairSpec {
    pub s1_bytes: u32,
    pub s2_bytes: u32,
}

impl ProbePairSpec {
    /// The paper's optimal pair for MTU 1500: 1600/2900 bytes.
    pub const OPTIMAL_1500: ProbePairSpec =
        ProbePairSpec { s1_bytes: sizes::PROBE_SMALL_BYTES, s2_bytes: sizes::PROBE_LARGE_BYTES };

    pub fn new(s1_bytes: u32, s2_bytes: u32) -> ProbePairSpec {
        assert!(s1_bytes < s2_bytes, "probe sizes must be ordered: {s1_bytes} < {s2_bytes}");
        ProbePairSpec { s1_bytes, s2_bytes }
    }

    pub fn delta_bytes(&self) -> u32 {
        self.s2_bytes - self.s1_bytes
    }
}

/// Apply Equation (3.5) to one sample pair. Returns `None` when
/// `t2 <= t1` (jitter inverted the pair — the sample is unusable).
///
/// # Example
///
/// ```
/// use smartsock_monitor::estimator::{bandwidth_mbps_from_pair, ProbePairSpec};
/// use smartsock_sim::SimDuration;
///
/// // ΔS = 1300 bytes, ΔT = 104 µs ⇒ B = 100 Mbps.
/// let b = bandwidth_mbps_from_pair(
///     ProbePairSpec::OPTIMAL_1500,
///     SimDuration::from_micros(500),
///     SimDuration::from_micros(604),
/// ).unwrap();
/// assert!((b - 100.0).abs() < 0.01);
/// ```
pub fn bandwidth_mbps_from_pair(
    spec: ProbePairSpec,
    t1: SimDuration,
    t2: SimDuration,
) -> Option<f64> {
    if t2 <= t1 {
        return None;
    }
    let dt = (t2 - t1).as_secs_f64();
    Some(f64::from(spec.delta_bytes()) * 8.0 / dt / 1e6)
}

/// Aggregated outcome of a probing round (several pairs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BwEstimate {
    /// Median over valid samples, Mbps (robust against jitter outliers).
    pub bw_mbps: f64,
    pub min_mbps: f64,
    pub max_mbps: f64,
    /// Minimum observed RTT of the small probe — the delay figure stored
    /// in `netdb`, milliseconds.
    pub delay_ms: f64,
    /// Valid samples out of attempted pairs.
    pub samples: usize,
}

/// Reduce raw per-pair measurements to a [`BwEstimate`].
///
/// `pairs` holds `(t1, t2)` echo RTTs for each repetition. Returns `None`
/// when no pair was usable.
pub fn reduce_round(
    spec: ProbePairSpec,
    pairs: &[(SimDuration, SimDuration)],
) -> Option<BwEstimate> {
    let mut bws: Vec<f64> =
        pairs.iter().filter_map(|&(t1, t2)| bandwidth_mbps_from_pair(spec, t1, t2)).collect();
    if bws.is_empty() {
        return None;
    }
    bws.sort_by(f64::total_cmp);
    let delay_ms = pairs.iter().map(|&(t1, _)| t1.as_millis_f64()).fold(f64::INFINITY, f64::min);
    let (&min_mbps, &max_mbps) = (bws.first()?, bws.last()?);
    Some(BwEstimate {
        bw_mbps: median_of_sorted(&bws),
        min_mbps,
        max_mbps,
        delay_ms,
        samples: bws.len(),
    })
}

/// Median of an ascending slice; NaN for an empty slice. For odd lengths the
/// two fetched elements coincide, so the average is exact.
fn median_of_sorted(xs: &[f64]) -> f64 {
    let n = xs.len();
    match (xs.get(n.saturating_sub(1) / 2), xs.get(n / 2)) {
        (Some(&lo), Some(&hi)) => (lo + hi) / 2.0,
        _ => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_3_5_on_a_clean_pair() {
        // ΔS = 1300 bytes = 10400 bits; ΔT = 104 µs ⇒ B = 100 Mbps.
        let spec = ProbePairSpec::OPTIMAL_1500;
        let t1 = SimDuration::from_micros(500);
        let t2 = SimDuration::from_micros(604);
        let b = bandwidth_mbps_from_pair(spec, t1, t2).unwrap();
        assert!((b - 100.0).abs() < 0.01, "b = {b}");
    }

    #[test]
    fn inverted_pairs_are_rejected() {
        let spec = ProbePairSpec::OPTIMAL_1500;
        let t = SimDuration::from_micros(500);
        assert_eq!(bandwidth_mbps_from_pair(spec, t, t), None);
        assert_eq!(bandwidth_mbps_from_pair(spec, SimDuration::from_micros(600), t), None);
    }

    #[test]
    fn reduce_round_takes_median_and_min_delay() {
        let spec = ProbePairSpec::new(1600, 2900);
        // Three samples: 100, 50, 200 Mbps equivalents.
        let us = |x: u64| SimDuration::from_micros(x);
        let pairs = vec![
            (us(1000), us(1104)), // 100 Mbps
            (us(900), us(1108)),  // 50 Mbps
            (us(1100), us(1152)), // 200 Mbps
            (us(1000), us(900)),  // inverted — dropped
        ];
        let est = reduce_round(spec, &pairs).unwrap();
        assert_eq!(est.samples, 3);
        assert!((est.bw_mbps - 100.0).abs() < 1.0, "median = {}", est.bw_mbps);
        assert!((est.min_mbps - 50.0).abs() < 1.0);
        assert!((est.max_mbps - 200.0).abs() < 1.0);
        assert!((est.delay_ms - 0.9).abs() < 1e-9);
    }

    #[test]
    fn all_inverted_round_yields_none() {
        let spec = ProbePairSpec::OPTIMAL_1500;
        let us = |x: u64| SimDuration::from_micros(x);
        assert_eq!(reduce_round(spec, &[(us(2), us(1))]), None);
        assert_eq!(reduce_round(spec, &[]), None);
    }

    #[test]
    fn even_sample_counts_average_the_middle_pair() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
        assert_eq!(median_of_sorted(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn misordered_specs_are_rejected() {
        ProbePairSpec::new(2900, 1600);
    }
}
