//! The security monitor (paper §3.4).
//!
//! Deliberately a thin, pluggable component: "the security monitor reads
//! the security records from a dummy security log". The log format is one
//! `<host> <ip> <level>` line per server; a third-party agent (the paper
//! discusses Cisco NAC trust agents and nmap/registry scanners) would feed
//! the same records through [`SecurityMonitor::ingest`].

use smartsock_proto::{ProtoError, SecurityRecord};
use smartsock_sim::{Scheduler, SimDuration};

use crate::db::SharedSecDb;

/// The security monitor daemon.
#[derive(Clone)]
pub struct SecurityMonitor {
    db: SharedSecDb,
    log_text: String,
    rescan_interval: SimDuration,
}

impl SecurityMonitor {
    /// Create a monitor over a dummy security log (§3.4.1).
    pub fn new(db: SharedSecDb, log_text: impl Into<String>) -> SecurityMonitor {
        SecurityMonitor {
            db,
            log_text: log_text.into(),
            rescan_interval: SimDuration::from_secs(30),
        }
    }

    pub fn with_rescan_interval(mut self, interval: SimDuration) -> SecurityMonitor {
        self.rescan_interval = interval;
        self
    }

    /// Parse the log and load `secdb`, then keep rescanning periodically
    /// (the log may be rotated by an external agent).
    pub fn start(&self, s: &mut Scheduler) -> Result<(), ProtoError> {
        self.scan()?;
        let mon = self.clone();
        s.schedule_in(self.rescan_interval, move |s| mon.tick(s));
        Ok(())
    }

    fn tick(&self, s: &mut Scheduler) {
        if self.scan().is_err() {
            s.telemetry.counter_incr("secmon-bad-scans");
        }
        let mon = self.clone();
        s.schedule_in(self.rescan_interval, move |s| mon.tick(s));
    }

    fn scan(&self) -> Result<(), ProtoError> {
        let records = SecurityRecord::parse_log(&self.log_text)?;
        let mut db = self.db.write();
        for r in records {
            db.upsert(r);
        }
        Ok(())
    }

    /// Feed records from an external security agent (Cisco-NAC-style
    /// integration point the paper leaves open).
    pub fn ingest(&self, records: impl IntoIterator<Item = SecurityRecord>) {
        let mut db = self.db.write();
        for r in records {
            db.upsert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::shared_dbs;
    use smartsock_proto::Ip;

    #[test]
    fn log_is_loaded_into_secdb_on_start() {
        let (_, _, secdb) = shared_dbs();
        let log = "# dummy security log\nhelene 192.168.3.10 5\nmimas 192.168.1.11 2\n";
        let mon = SecurityMonitor::new(secdb.clone(), log);
        let mut s = Scheduler::new();
        mon.start(&mut s).unwrap();
        assert_eq!(secdb.read().level_of(Ip::new(192, 168, 3, 10)), Some(5));
        assert_eq!(secdb.read().level_of(Ip::new(192, 168, 1, 11)), Some(2));
        assert_eq!(secdb.read().len(), 2);
    }

    #[test]
    fn malformed_logs_error_at_start() {
        let (_, _, secdb) = shared_dbs();
        let mon = SecurityMonitor::new(secdb, "helene not-an-ip 5\n");
        let mut s = Scheduler::new();
        assert!(mon.start(&mut s).is_err());
    }

    #[test]
    fn external_agent_records_are_ingested() {
        let (_, _, secdb) = shared_dbs();
        let mon = SecurityMonitor::new(secdb.clone(), "");
        mon.ingest([SecurityRecord {
            host: "titan-x".into(),
            ip: Ip::new(192, 168, 5, 10),
            level: -1,
        }]);
        assert_eq!(secdb.read().level_of(Ip::new(192, 168, 5, 10)), Some(-1));
    }
}
