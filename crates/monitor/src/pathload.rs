//! A pathload-style SLoPS estimator — the second reference tool of the
//! thesis (§2.1, §3.3.1, Table 3.3).
//!
//! "Pathload uses a non-intrusive method called SLoPS (Self-Loading
//! Periodic Streams). The basic idea ... is to send streams of UDP packets
//! at different data rate and monitor the network delay for each stream.
//! If the sending rate is higher than the available bandwidth on the
//! network path, the delay will be increased as the queue will be built up
//! at the bottle link."
//!
//! Unlike the one-way UDP stream and packet-pair tools, SLoPS is a
//! **two-end** method: a receiver must run on the far host to timestamp
//! arrivals. [`estimate`] binds a temporary receiver, then runs a binary
//! search over stream rates: for each candidate rate it sends a periodic
//! stream and asks whether one-way delays *trend upward* across the
//! stream; the search converges on the largest non-self-loading rate.

use std::cell::RefCell;
use std::rc::Rc;

use smartsock_net::packet::udp_wire_size;
use smartsock_net::{Network, NodeId, Payload};
use smartsock_proto::Endpoint;
use smartsock_sim::{Scheduler, SimDuration, SimTime};

/// SLoPS configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlopsConfig {
    /// Packets per stream.
    pub stream_len: usize,
    /// Probe payload bytes (single-fragment keeps timing clean).
    pub probe_bytes: u32,
    /// Binary-search iterations; the bracket halves each round.
    pub iterations: u32,
    /// Initial search bracket in Mbps.
    pub min_mbps: f64,
    pub max_mbps: f64,
    /// Allowance before a delay trend counts as self-loading.
    pub trend_threshold: SimDuration,
    /// Idle gap between streams (decongestion, as pathload does).
    pub stream_gap: SimDuration,
}

impl Default for SlopsConfig {
    fn default() -> Self {
        SlopsConfig {
            stream_len: 50,
            probe_bytes: 1200,
            iterations: 8,
            min_mbps: 0.5,
            max_mbps: 120.0,
            trend_threshold: SimDuration::from_micros(200),
            stream_gap: SimDuration::from_millis(50),
        }
    }
}

/// Receiver port for SLoPS streams (distinct from the closed probe port —
/// SLoPS *wants* the datagrams delivered).
const SLOPS_PORT: u16 = 33500;

struct Search {
    lo: f64,
    hi: f64,
    iterations_left: u32,
}

/// Estimate the available bandwidth from `src` to `dst` in Mbps.
///
/// Temporarily binds the receiver port on `dst`; unbinds when done.
pub fn estimate(
    s: &mut Scheduler,
    net: &Network,
    src: NodeId,
    dst: NodeId,
    cfg: SlopsConfig,
    on_done: impl FnOnce(&mut Scheduler, f64) + 'static,
) {
    let search = Rc::new(RefCell::new(Search {
        lo: cfg.min_mbps,
        hi: cfg.max_mbps,
        iterations_left: cfg.iterations,
    }));
    next_stream(s, net.clone(), src, dst, cfg, search, Box::new(on_done));
}

type Done = Box<dyn FnOnce(&mut Scheduler, f64)>;

fn next_stream(
    s: &mut Scheduler,
    net: Network,
    src: NodeId,
    dst: NodeId,
    cfg: SlopsConfig,
    search: Rc<RefCell<Search>>,
    on_done: Done,
) {
    let (rate_mbps, finished) = {
        let st = search.borrow();
        ((st.lo * st.hi).sqrt(), st.iterations_left == 0)
    };
    if finished {
        let st = search.borrow();
        let result = (st.lo + st.hi) / 2.0;
        drop(st);
        on_done(s, result);
        return;
    }

    let from = Endpoint::new(net.ip_of(src), 50001);
    let to = Endpoint::new(net.ip_of(dst), SLOPS_PORT);
    let wire_bits = udp_wire_size(u64::from(cfg.probe_bytes)) as f64 * 8.0;
    let gap = SimDuration::from_secs_f64(wire_bits / (rate_mbps * 1e6));

    // Receiver: collect one-way delays (arrival − scheduled send time).
    let delays: Rc<RefCell<Vec<SimDuration>>> =
        Rc::new(RefCell::new(Vec::with_capacity(cfg.stream_len)));
    let send_times: Rc<RefCell<Vec<SimTime>>> =
        Rc::new(RefCell::new(vec![SimTime::ZERO; cfg.stream_len]));
    {
        let delays = Rc::clone(&delays);
        let send_times = Rc::clone(&send_times);
        net.bind_udp(to, move |s, dgram| {
            // Packet index rides in the first 4 payload bytes.
            let Some(header) = dgram.payload.data.get(..4) else { return };
            let idx = u32::from_le_bytes(header.try_into().expect("invariant: slice is 4 bytes"))
                as usize;
            if let Some(&sent) = send_times.borrow().get(idx) {
                delays.borrow_mut().push(s.now().since(sent));
            }
        });
    }

    // Sender: one periodic stream.
    for i in 0..cfg.stream_len {
        let at = s.now() + SimDuration::from_nanos(gap.as_nanos() * i as u64);
        if let Some(slot) = send_times.borrow_mut().get_mut(i) {
            *slot = at;
        }
        let net2 = net.clone();
        s.schedule_at(at, move |s| {
            let header = (i as u32).to_le_bytes().to_vec();
            let pad = u64::from(cfg.probe_bytes).saturating_sub(4);
            net2.send_udp(s, from, to, Payload::data_with_padding(header, pad), None);
        });
    }

    // Verdict once the stream has drained.
    let stream_span = SimDuration::from_nanos(gap.as_nanos() * cfg.stream_len as u64);
    let settle = s.now() + stream_span + SimDuration::from_millis(200);
    s.schedule_at(settle, move |s| {
        net.unbind_udp(to);
        let ds = delays.borrow();
        // Self-loading test: average delay of the last third vs the first
        // third of received packets.
        let loading = if ds.len() < 6 {
            true // heavy loss / nothing arrived: treat as overloaded
        } else {
            let third = ds.len() / 3;
            let (head_third, _) = ds.split_at(third);
            let (_, tail_third) = ds.split_at(ds.len() - third);
            let head: f64 = head_third.iter().map(|d| d.as_secs_f64()).sum::<f64>() / third as f64;
            let tail: f64 = tail_third.iter().map(|d| d.as_secs_f64()).sum::<f64>() / third as f64;
            tail - head > cfg.trend_threshold.as_secs_f64()
        };
        drop(ds);
        {
            let mut st = search.borrow_mut();
            if loading {
                st.hi = rate_mbps;
            } else {
                st.lo = rate_mbps;
            }
            st.iterations_left -= 1;
        }
        s.telemetry.counter_incr("slops-streams");
        let net2 = net.clone();
        let resume = s.now() + cfg.stream_gap;
        s.schedule_at(resume, move |s| {
            next_stream(s, net2, src, dst, cfg, search, on_done);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_net::{HostParams, LinkParams, NetworkBuilder};
    use smartsock_proto::Ip;

    fn path(seed: u64, rate_mbps: f64, cross: f64) -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(seed);
        let a = b.host("a", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let r = b.router("r", Ip::new(10, 0, 0, 254));
        let c = b.host("c", Ip::new(10, 0, 1, 1), HostParams::testbed());
        b.duplex(a, r, LinkParams::lan_100mbps());
        b.duplex(r, c, LinkParams::lan_100mbps().with_rate(rate_mbps * 1e6).with_cross_load(cross));
        (b.build(), a, c)
    }

    fn run(net: &Network, a: NodeId, c: NodeId) -> f64 {
        let mut s = Scheduler::new();
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        estimate(&mut s, net, a, c, SlopsConfig::default(), move |_s, e| *g.borrow_mut() = Some(e));
        s.run();
        let e = got.borrow().expect("slops converges");
        e
    }

    #[test]
    fn slops_converges_near_available_bandwidth() {
        for (rate, cross) in [(20.0f64, 0.0), (50.0, 0.2), (100.0, 0.05)] {
            let (net, a, c) = path(13, rate, cross);
            let truth = net.path_available_bw(a, c).unwrap() / 1e6;
            let est = run(&net, a, c);
            assert!(
                (est - truth).abs() / truth < 0.35,
                "truth {truth:.1} Mbps, slops estimated {est:.1}"
            );
        }
    }

    #[test]
    fn slops_is_slower_but_two_ended() {
        // Documented property: SLoPS needs a bound receiver; the closed
        // probe port stays untouched so ICMP probing can run concurrently.
        let (net, a, c) = path(17, 30.0, 0.0);
        let mut s = Scheduler::new();
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        estimate(&mut s, &net, a, c, SlopsConfig::default(), move |_s, e| {
            *g.borrow_mut() = Some(e)
        });
        s.run();
        assert!(got.borrow().is_some());
        assert!(s.telemetry.counter("slops-streams") >= 8, "one stream per iteration");
        // The receiver port is released afterwards.
        let ep = Endpoint::new(net.ip_of(c), SLOPS_PORT);
        let echoed = Rc::new(RefCell::new(false));
        let e2 = Rc::clone(&echoed);
        net.send_udp(
            &mut s,
            Endpoint::new(net.ip_of(a), 50002),
            ep,
            Payload::zeroes(100),
            Some(Box::new(move |_s, _e| *e2.borrow_mut() = true)),
        );
        s.run();
        assert!(*echoed.borrow(), "port unbound ⇒ ICMP echo returns");
    }
}
