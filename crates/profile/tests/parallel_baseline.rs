//! Property: the `BENCH_profile.json` baseline document is a pure
//! function of the (experiment, seed) grid — capturing the shards on 8
//! workers must yield the same bytes as capturing them serially, once the
//! single nondeterministic field (wall-clock) is zeroed, exactly what
//! `profile bench --zero-wall --jobs N` does.

use smartsock_bench::executor::cells_for;
use smartsock_bench::{catalog, run_cells, CellResult, DEFAULT_SEED};
use smartsock_profile::baseline;

fn baseline_doc(results: &[CellResult]) -> String {
    let profiles: Vec<baseline::ExperimentProfile> = results
        .iter()
        .map(|r| {
            let (_, run) = r.outcome.as_ref().expect("catalog experiments must not panic");
            let mut p = baseline::ExperimentProfile::from_run(run);
            p.wall_ns = 0;
            p
        })
        .collect();
    baseline::render_profiles(&profiles)
}

#[test]
fn baseline_document_is_byte_identical_across_jobs_1_and_8() {
    // The profile CI gate subset plus one multi-scheduler experiment.
    let ids: Vec<_> = catalog()
        .into_iter()
        .filter(|(id, _)| matches!(*id, "fig3.3" | "table5.2" | "table5.3"))
        .collect();
    let seeds = [DEFAULT_SEED, DEFAULT_SEED + 1];
    let d1 = baseline_doc(&run_cells(cells_for(&ids, &seeds), 1));
    let d8 = baseline_doc(&run_cells(cells_for(&ids, &seeds), 8));
    assert_eq!(d1, d8, "baseline bytes must not depend on --jobs");
    let docs = baseline::parse_profiles(&d1).expect("own render must parse");
    assert_eq!(docs.len(), ids.len() * seeds.len());
    // (id, seed)-stable ordering: grouped by id, seeds ascending within.
    let keys: Vec<(String, u64)> = docs.iter().map(|p| (p.experiment_id.clone(), p.seed)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "document order is the stable (experiment, seed) key order");
}
