//! Acceptance coverage for the profiler: byte-identical output across
//! same-seed runs, and a nonzero `profile diff` exit on an injected
//! regression beyond the threshold.

use std::path::PathBuf;
use std::process::Command;

use smartsock_bench::{profile_run, DEFAULT_SEED};
use smartsock_profile::{baseline, fold};
use smartsock_telemetry::trace::Trace;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_profile"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("smartsock-profile-tests");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

/// One profiled run of a cheap span-producing catalog experiment, folded.
fn folded_run(seed: u64) -> (baseline::ExperimentProfile, fold::Folded, Vec<String>) {
    let (_, run) = profile_run("table5.2", seed).expect("table5.2 is in the catalog");
    let parsed: Vec<Trace> = run.traces.iter().map(|t| Trace::parse(t)).collect();
    let folded = fold::fold_traces(&parsed);
    (baseline::ExperimentProfile::from_run(&run), folded, run.traces)
}

#[test]
fn same_seed_runs_produce_byte_identical_report_flame_and_baseline() {
    let (pa, fa, traces_a) = folded_run(DEFAULT_SEED);
    let (pb, fb, traces_b) = folded_run(DEFAULT_SEED);

    assert_eq!(traces_a, traces_b, "exported traces must be byte-identical per seed");
    assert_eq!(fold::render_report(&fa, 20), fold::render_report(&fb, 20));
    assert_eq!(fold::render_flame(&fa), fold::render_flame(&fb));
    assert_eq!(pa.trace_sha, pb.trace_sha);

    // Everything but wall time matches in the baseline entry too.
    let (mut a, mut b) = (pa, pb);
    a.wall_ns = 0;
    b.wall_ns = 0;
    assert_eq!(a, b);
}

#[test]
fn cli_report_and_flame_are_deterministic_over_a_trace_file() {
    let (_, _, traces) = folded_run(11);
    let path = scratch("table5_2_seed11.jsonl");
    std::fs::write(&path, traces.join("")).expect("write trace");

    let run = |sub: &str| {
        let out = bin().arg(sub).arg(&path).output().expect("run profile");
        assert!(out.status.success(), "{sub} failed: {}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    assert_eq!(run("report"), run("report"));
    assert_eq!(run("flame"), run("flame"));
    assert!(!run("flame").is_empty(), "table5.2 opens probe/net/wizard spans");
}

#[test]
fn cli_diff_exits_nonzero_on_injected_regression_and_zero_when_clean() {
    let (profile, _, _) = folded_run(DEFAULT_SEED);
    let old_doc = baseline::render_profiles(std::slice::from_ref(&profile));

    // Inject a +10% sim-event regression (threshold is 5%).
    let mut slow = profile.clone();
    slow.sim_events += slow.sim_events / 10 + 1;
    let new_doc = baseline::render_profiles(std::slice::from_ref(&slow));

    let old_path = scratch("baseline.json");
    let new_path = scratch("regressed.json");
    std::fs::write(&old_path, &old_doc).expect("write baseline");
    std::fs::write(&new_path, &new_doc).expect("write regressed");

    let out = bin().args(["diff"]).arg(&old_path).arg(&new_path).output().expect("run diff");
    assert!(!out.status.success(), "a +10% event regression must gate");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("verdict: REGRESSION"), "{text}");

    // Same file on both sides: clean exit.
    let out = bin().args(["diff"]).arg(&old_path).arg(&old_path).output().expect("run diff");
    assert!(out.status.success(), "identical profiles must pass");
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: ok"));

    // A generous threshold lets the same delta through.
    let out = bin()
        .args(["diff", "--threshold-pct", "50"])
        .arg(&old_path)
        .arg(&new_path)
        .output()
        .expect("run diff");
    assert!(out.status.success(), "50% threshold must tolerate +10%");
}
