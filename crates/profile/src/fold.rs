//! Folding span trees into profiles on simulated time.
//!
//! Self-time is the classic profiler attribution: a span's duration minus
//! the durations of its *direct* children, so time shows up exactly once —
//! at the innermost span that was open when it passed. Totals keep the
//! inclusive view. Folded stacks use the `flamegraph.pl` collapsed format
//! (`root;child;leaf weight`), weighted by self-time in nanoseconds, so
//! standard tooling can render them directly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use smartsock_telemetry::trace::Trace;

/// Aggregate cost of one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    pub calls: u64,
    pub self_ns: u64,
    pub total_ns: u64,
}

/// A folded profile: per-name aggregates plus collapsed stacks.
#[derive(Clone, Debug, Default)]
pub struct Folded {
    /// Per-span-name totals, keyed by name (sorted).
    pub spans: BTreeMap<String, SpanStat>,
    /// `root;child;leaf -> self-time ns`, summed over occurrences.
    pub stacks: BTreeMap<String, u64>,
}

impl Folded {
    fn absorb(&mut self, tr: &Trace) {
        // Direct-children time per closed parent id. Children of spans
        // that never closed accumulate too, but such parents produce no
        // SpanRow, so the entry is simply never read.
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &tr.spans {
            if let Some(p) = s.parent {
                *child_ns.entry(p).or_default() += s.dur_ns;
            }
        }
        for s in &tr.spans {
            let kids = child_ns.get(&s.id).copied().unwrap_or(0);
            let self_ns = s.dur_ns.saturating_sub(kids);
            let e = self.spans.entry(s.name.clone()).or_default();
            e.calls += 1;
            e.self_ns += self_ns;
            e.total_ns += s.dur_ns;

            // Ancestry path from the start records (works even when an
            // ancestor never closed). Hop cap guards against a malformed
            // trace with a parent cycle.
            let mut path = vec![s.name.as_str()];
            let mut cur = s.parent;
            let mut hops = 0;
            while let Some(p) = cur {
                let Some((name, _, parent, _)) = tr.starts.get(&p) else { break };
                path.push(name);
                cur = *parent;
                hops += 1;
                if hops > 64 {
                    break;
                }
            }
            path.reverse();
            *self.stacks.entry(path.join(";")).or_default() += self_ns;
        }
    }
}

/// Fold one parsed trace.
pub fn fold(tr: &Trace) -> Folded {
    let mut f = Folded::default();
    f.absorb(tr);
    f
}

/// Fold several traces (one per scheduler of a profiled experiment) into
/// one merged profile.
pub fn fold_traces<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Folded {
    let mut f = Folded::default();
    for tr in traces {
        f.absorb(tr);
    }
    f
}

/// The hot-path report: top `n` span names by self-time, with call counts
/// and inclusive totals. Byte-deterministic: ties break by name.
pub fn render_report(f: &Folded, n: usize) -> String {
    let mut rows: Vec<(&String, &SpanStat)> = f.spans.iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(b.0)));
    let grand: u64 = f.spans.values().map(|s| s.self_ns).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>8} {:>14} {:>14} {:>6}",
        "span", "calls", "self-ms", "total-ms", "self%"
    );
    for (name, st) in rows.iter().take(n) {
        let pct = if grand == 0 { 0.0 } else { st.self_ns as f64 * 100.0 / grand as f64 };
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>14} {:>14} {:>5.1}%",
            name,
            st.calls,
            ms(st.self_ns),
            ms(st.total_ns),
            pct
        );
    }
    let _ = writeln!(out, "total: {} span names, {} ms self time", f.spans.len(), ms(grand));
    out
}

/// The collapsed-stack export, one `path weight` line per stack, sorted by
/// path. Weights are self-time nanoseconds.
pub fn render_flame(f: &Folded) -> String {
    let mut out = String::new();
    for (path, w) in &f.stacks {
        let _ = writeln!(out, "{path} {w}");
    }
    out
}

/// Exact fixed-point millisecond rendering of a nanosecond count: always
/// six decimals, so the text is reversible to the integer and stable.
pub fn ms(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// Parse [`ms`]'s output (or any `<int>.<6 digits>` millisecond text)
/// back to nanoseconds. `None` on any other shape.
pub fn parse_ms(text: &str) -> Option<u64> {
    let (int, frac) = text.split_once('.')?;
    if frac.len() != 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let int: u64 = int.parse().ok()?;
    let frac: u64 = frac.parse().ok()?;
    int.checked_mul(1_000_000)?.checked_add(frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_telemetry::Telemetry;

    fn trace() -> Trace {
        let mut t = Telemetry::new();
        t.set_now(0);
        let root = t.span_start("netmon-round", "sagit");
        t.set_now(100);
        let c1 = t.span_child("probe-report", "sagit", root);
        t.set_now(400);
        t.span_end(c1);
        let c2 = t.span_child("probe-report", "sagit", root);
        t.set_now(600);
        t.span_end(c2);
        t.set_now(1000);
        t.span_end(root);
        Trace::parse(&t.export_jsonl())
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let f = fold(&trace());
        let root = &f.spans["netmon-round"];
        assert_eq!(root.calls, 1);
        assert_eq!(root.total_ns, 1000);
        assert_eq!(root.self_ns, 1000 - 300 - 200);
        let kids = &f.spans["probe-report"];
        assert_eq!(kids.calls, 2);
        assert_eq!(kids.total_ns, 500);
        assert_eq!(kids.self_ns, 500);
    }

    #[test]
    fn folded_stacks_use_collapsed_format() {
        let f = fold(&trace());
        assert_eq!(f.stacks["netmon-round"], 500);
        assert_eq!(f.stacks["netmon-round;probe-report"], 500);
        let flame = render_flame(&f);
        assert_eq!(flame, "netmon-round 500\nnetmon-round;probe-report 500\n");
    }

    #[test]
    fn unclosed_parents_still_anchor_their_children_in_stacks() {
        let mut t = Telemetry::new();
        let root = t.span_start("wizard-match", "suna");
        let child = t.span_child("client-request", "suna", root);
        t.set_now(50);
        t.span_end(child);
        // root never closes.
        let f = fold(&Trace::parse(&t.export_jsonl()));
        assert!(!f.spans.contains_key("wizard-match"));
        assert_eq!(f.spans["client-request"].self_ns, 50);
        assert_eq!(f.stacks["wizard-match;client-request"], 50);
    }

    #[test]
    fn report_ranks_by_self_time_and_is_stable() {
        let f = fold(&trace());
        let a = render_report(&f, 10);
        let b = render_report(&fold(&trace()), 10);
        assert_eq!(a, b);
        let first_data_line = a.lines().nth(1).expect("header + rows");
        assert!(first_data_line.starts_with("netmon-round"), "{a}");
        assert!(a.contains("0.000500"), "{a}");
    }

    #[test]
    fn ms_rendering_round_trips() {
        for ns in [0u64, 1, 999_999, 1_000_000, 123_456_789_012] {
            assert_eq!(parse_ms(&ms(ns)), Some(ns));
        }
        assert_eq!(ms(1_500_000), "1.500000");
        assert_eq!(parse_ms("1.5"), None);
        assert_eq!(parse_ms("x.000000"), None);
    }
}
