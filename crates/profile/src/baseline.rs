//! The `BENCH_profile.json` baseline: schema, writer/parser, and the
//! threshold diff that gates CI.
//!
//! Per experiment the file records
//! `{experiment_id, sim_events, sim_time_ms, wall_ms,
//!   spans: {name: {calls, self_ms, total_ms}}, trace_sha}`
//! plus the seed and the queue/allocation proxies. Millisecond fields are
//! printed with exactly six decimals so they round-trip to integer
//! nanoseconds; everything except `wall_ms` is a pure function of the
//! seed.
//!
//! Diff policy: the *deterministic* metrics — dispatched events and
//! per-span self-time — gate against `Thresholds::pct`. Wall-clock is
//! always reported but only gated when `gate_wall` is set (with its own,
//! looser threshold), because the committed baseline and the CI runner
//! are different machines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use smartsock_bench::RunProfile;
use smartsock_telemetry::json::{self, Value};
use smartsock_telemetry::trace::Trace;

use crate::fold::{fold_traces, ms, parse_ms, SpanStat};
use crate::sha::sha256_hex;

/// One experiment's entry in `BENCH_profile.json`. Times are kept in
/// nanoseconds internally and rendered as fixed-point milliseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentProfile {
    pub experiment_id: String,
    pub seed: u64,
    pub sim_events: u64,
    pub sim_time_ns: u64,
    pub wall_ns: u64,
    pub peak_pending: u64,
    pub records: u64,
    pub schedulers: u64,
    pub spans: BTreeMap<String, SpanStat>,
    /// SHA-256 over the concatenated exported traces.
    pub trace_sha: String,
}

impl ExperimentProfile {
    /// Build the baseline entry from a raw bench capture: parse and fold
    /// the traces, fingerprint the bytes.
    pub fn from_run(p: &RunProfile) -> ExperimentProfile {
        let parsed: Vec<Trace> = p.traces.iter().map(|t| Trace::parse(t)).collect();
        let folded = fold_traces(&parsed);
        let mut bytes = Vec::new();
        for t in &p.traces {
            bytes.extend_from_slice(t.as_bytes());
        }
        ExperimentProfile {
            experiment_id: p.experiment_id.clone(),
            seed: p.seed,
            sim_events: p.sim_events,
            sim_time_ns: p.sim_time_ns,
            wall_ns: p.wall_ns,
            peak_pending: p.peak_pending as u64,
            records: p.records,
            schedulers: p.schedulers,
            spans: folded.spans,
            trace_sha: sha256_hex(&bytes),
        }
    }
}

/// Render profiles as the canonical `BENCH_profile.json` document:
/// sorted by (experiment id, seed) — the same stable key order the
/// parallel executor merges on, so the document's bytes are independent
/// of how many workers captured the shards — one experiment per line,
/// fixed field order.
pub fn render_profiles(profiles: &[ExperimentProfile]) -> String {
    let mut sorted: Vec<&ExperimentProfile> = profiles.iter().collect();
    sorted.sort_by(|a, b| {
        (a.experiment_id.as_str(), a.seed).cmp(&(b.experiment_id.as_str(), b.seed))
    });
    let mut s = String::from("{\"version\":1,\"profiles\":[\n");
    for (i, p) in sorted.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        let _ = write!(
            s,
            "{{\"experiment_id\":\"{}\",\"seed\":{},\"sim_events\":{},\"sim_time_ms\":{},\
             \"wall_ms\":{},\"peak_pending\":{},\"records\":{},\"schedulers\":{},\"spans\":{{",
            json::escape(&p.experiment_id),
            p.seed,
            p.sim_events,
            ms(p.sim_time_ns),
            ms(p.wall_ns),
            p.peak_pending,
            p.records,
            p.schedulers,
        );
        for (j, (name, st)) in p.spans.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"calls\":{},\"self_ms\":{},\"total_ms\":{}}}",
                json::escape(name),
                st.calls,
                ms(st.self_ns),
                ms(st.total_ns),
            );
        }
        let _ = write!(s, "}},\"trace_sha\":\"{}\"}}", json::escape(&p.trace_sha));
    }
    s.push_str("\n]}\n");
    s
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing field {key:?}"))
}

fn u64_field(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?.as_u64().ok_or_else(|| format!("{what}: field {key:?} is not a u64"))
}

fn ms_field(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    match field(v, key, what)? {
        Value::Num(raw) => parse_ms(raw)
            .ok_or_else(|| format!("{what}: field {key:?} is not <int>.<6-digit> milliseconds")),
        _ => Err(format!("{what}: field {key:?} is not a number")),
    }
}

/// Parse a `BENCH_profile.json` document.
pub fn parse_profiles(src: &str) -> Result<Vec<ExperimentProfile>, String> {
    let doc = json::parse(src).ok_or("BENCH_profile.json: not valid JSON")?;
    let profiles = match field(&doc, "profiles", "BENCH_profile.json")? {
        Value::Arr(xs) => xs,
        _ => return Err("BENCH_profile.json: \"profiles\" is not an array".into()),
    };
    let mut out = Vec::new();
    for v in profiles {
        let id = field(v, "experiment_id", "profile entry")?
            .as_str()
            .ok_or("profile entry: experiment_id is not a string")?
            .to_owned();
        let what = format!("profile {id}");
        let mut spans = BTreeMap::new();
        match field(v, "spans", &what)? {
            Value::Obj(m) => {
                for (name, sv) in m {
                    spans.insert(
                        name.clone(),
                        SpanStat {
                            calls: u64_field(sv, "calls", &what)?,
                            self_ns: ms_field(sv, "self_ms", &what)?,
                            total_ns: ms_field(sv, "total_ms", &what)?,
                        },
                    );
                }
            }
            _ => return Err(format!("{what}: \"spans\" is not an object")),
        }
        out.push(ExperimentProfile {
            seed: u64_field(v, "seed", &what)?,
            sim_events: u64_field(v, "sim_events", &what)?,
            sim_time_ns: ms_field(v, "sim_time_ms", &what)?,
            wall_ns: ms_field(v, "wall_ms", &what)?,
            peak_pending: u64_field(v, "peak_pending", &what)?,
            records: u64_field(v, "records", &what)?,
            schedulers: u64_field(v, "schedulers", &what)?,
            trace_sha: field(v, "trace_sha", &what)?
                .as_str()
                .ok_or_else(|| format!("{what}: trace_sha is not a string"))?
                .to_owned(),
            spans,
            experiment_id: id,
        });
    }
    Ok(out)
}

/// Diff thresholds. Percentages are relative changes (new vs old).
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Gate for deterministic metrics (sim events, span self-time).
    pub pct: f64,
    /// Gate wall-clock too (off by default: CI hardware differs from the
    /// machine that produced the committed baseline).
    pub gate_wall: bool,
    /// Wall-clock gate, used only when `gate_wall` is set.
    pub wall_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds { pct: 5.0, gate_wall: false, wall_pct: 25.0 }
    }
}

/// Per-experiment classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Improved,
    Regressed,
    Neutral,
}

#[derive(Clone, Debug)]
pub struct ExperimentDiff {
    pub experiment_id: String,
    pub verdict: Verdict,
    /// Human-readable evidence lines, deterministic order.
    pub notes: Vec<String>,
}

#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    pub entries: Vec<ExperimentDiff>,
    /// Experiments in the baseline but absent from the new profile — a
    /// gating failure: the trajectory for them would silently end.
    pub missing_in_new: Vec<String>,
    /// Experiments only in the new profile (start being tracked once the
    /// baseline is regenerated).
    pub added_in_new: Vec<String>,
}

impl DiffReport {
    /// Whether CI should fail.
    pub fn has_regression(&self) -> bool {
        !self.missing_in_new.is_empty()
            || self.entries.iter().any(|e| e.verdict == Verdict::Regressed)
    }
}

/// Relative change in percent; `None` when both sides are zero.
fn pct_change(old: u64, new: u64) -> Option<f64> {
    if old == 0 && new == 0 {
        return None;
    }
    if old == 0 {
        return Some(f64::INFINITY);
    }
    Some((new as f64 - old as f64) * 100.0 / old as f64)
}

struct Tally {
    notes: Vec<String>,
    regressed: bool,
    improved: bool,
}

impl Tally {
    /// Check one gated metric: over +threshold regresses, under -threshold
    /// improves, in between is silent.
    fn gate(&mut self, label: &str, old: u64, new: u64, threshold: f64) {
        let Some(pct) = pct_change(old, new) else { return };
        if pct > threshold {
            self.regressed = true;
            self.notes
                .push(format!("{label} {pct:+.1}% ({old} -> {new}) exceeds +{threshold:.1}%"));
        } else if pct < -threshold {
            self.improved = true;
            self.notes.push(format!("{label} {pct:+.1}% ({old} -> {new})"));
        }
    }
}

/// Diff a new profile set against the baseline.
pub fn diff(old: &[ExperimentProfile], new: &[ExperimentProfile], th: &Thresholds) -> DiffReport {
    let new_by_id: BTreeMap<&str, &ExperimentProfile> =
        new.iter().map(|p| (p.experiment_id.as_str(), p)).collect();
    let old_ids: std::collections::BTreeSet<&str> =
        old.iter().map(|p| p.experiment_id.as_str()).collect();

    let mut report = DiffReport {
        added_in_new: new
            .iter()
            .filter(|p| !old_ids.contains(p.experiment_id.as_str()))
            .map(|p| p.experiment_id.clone())
            .collect(),
        ..DiffReport::default()
    };

    let mut sorted_old: Vec<&ExperimentProfile> = old.iter().collect();
    sorted_old.sort_by(|a, b| a.experiment_id.cmp(&b.experiment_id));
    for o in sorted_old {
        let Some(n) = new_by_id.get(o.experiment_id.as_str()) else {
            report.missing_in_new.push(o.experiment_id.clone());
            continue;
        };
        let mut t = Tally { notes: Vec::new(), regressed: false, improved: false };
        t.gate("sim_events", o.sim_events, n.sim_events, th.pct);
        for (name, os) in &o.spans {
            match n.spans.get(name) {
                Some(ns) => {
                    t.gate(&format!("span {name} self_ms"), os.self_ns, ns.self_ns, th.pct);
                }
                None => {
                    t.regressed = true;
                    t.notes.push(format!(
                        "span {name} disappeared from the profile (regenerate the baseline \
                         if the rename/removal is intentional)"
                    ));
                }
            }
        }
        if th.gate_wall {
            t.gate("wall_ms", o.wall_ns, n.wall_ns, th.wall_pct);
        }
        if t.notes.is_empty() && o.trace_sha != n.trace_sha {
            t.notes
                .push("trace bytes changed (sha) with all gated metrics within thresholds".into());
        }
        let verdict = if t.regressed {
            Verdict::Regressed
        } else if t.improved {
            Verdict::Improved
        } else {
            Verdict::Neutral
        };
        report.entries.push(ExperimentDiff {
            experiment_id: o.experiment_id.clone(),
            verdict,
            notes: t.notes,
        });
    }
    report
}

/// Render a diff report for humans / CI logs.
pub fn render_diff(r: &DiffReport) -> String {
    let mut s = String::new();
    for e in &r.entries {
        let v = match e.verdict {
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Neutral => "neutral",
        };
        let _ = writeln!(s, "{}: {v}", e.experiment_id);
        for n in &e.notes {
            let _ = writeln!(s, "  {n}");
        }
    }
    for id in &r.missing_in_new {
        let _ = writeln!(s, "{id}: MISSING from new profile (baseline still tracks it)");
    }
    for id in &r.added_in_new {
        let _ = writeln!(s, "{id}: new experiment, not in baseline");
    }
    let _ = writeln!(s, "verdict: {}", if r.has_regression() { "REGRESSION" } else { "ok" });
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(id: &str, sim_events: u64, span_self: u64) -> ExperimentProfile {
        let mut spans = BTreeMap::new();
        spans.insert(
            "probe-report".to_owned(),
            SpanStat { calls: 4, self_ns: span_self, total_ns: span_self },
        );
        ExperimentProfile {
            experiment_id: id.to_owned(),
            seed: 1,
            sim_events,
            sim_time_ns: 5_000_000,
            wall_ns: 42_000_000,
            peak_pending: 7,
            records: 100,
            schedulers: 1,
            spans,
            trace_sha: "deadbeef".to_owned(),
        }
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let ps = vec![profile("fig3.3", 1000, 2_500_000), profile("table5.2", 50, 1)];
        let doc = render_profiles(&ps);
        let back = parse_profiles(&doc).expect("own output must parse");
        let mut want = ps.clone();
        want.sort_by(|a, b| a.experiment_id.cmp(&b.experiment_id));
        assert_eq!(back, want);
        // Deterministic bytes.
        assert_eq!(doc, render_profiles(&ps));
    }

    #[test]
    fn within_threshold_is_neutral() {
        let old = vec![profile("fig3.3", 1000, 1_000_000)];
        let new = vec![profile("fig3.3", 1030, 1_020_000)];
        let r = diff(&old, &new, &Thresholds::default());
        assert_eq!(r.entries[0].verdict, Verdict::Neutral);
        assert!(!r.has_regression());
    }

    #[test]
    fn event_count_regression_beyond_threshold_gates() {
        let old = vec![profile("fig3.3", 1000, 1_000_000)];
        let new = vec![profile("fig3.3", 1100, 1_000_000)];
        let r = diff(&old, &new, &Thresholds::default());
        assert_eq!(r.entries[0].verdict, Verdict::Regressed);
        assert!(r.has_regression());
        assert!(render_diff(&r).contains("sim_events +10.0%"));
    }

    #[test]
    fn span_self_time_regression_gates_and_improvement_classifies() {
        let old = vec![profile("fig3.3", 1000, 1_000_000)];
        let slow = vec![profile("fig3.3", 1000, 1_200_000)];
        assert!(diff(&old, &slow, &Thresholds::default()).has_regression());
        let fast = vec![profile("fig3.3", 1000, 800_000)];
        let r = diff(&old, &fast, &Thresholds::default());
        assert_eq!(r.entries[0].verdict, Verdict::Improved);
        assert!(!r.has_regression());
    }

    #[test]
    fn disappeared_span_and_missing_experiment_gate() {
        let old = vec![profile("fig3.3", 1000, 1_000_000)];
        let mut gone = profile("fig3.3", 1000, 1_000_000);
        gone.spans.clear();
        let r = diff(&old, &[gone], &Thresholds::default());
        assert!(r.has_regression());
        let r = diff(&old, &[], &Thresholds::default());
        assert_eq!(r.missing_in_new, ["fig3.3"]);
        assert!(r.has_regression());
    }

    #[test]
    fn wall_clock_gates_only_on_request() {
        let old = vec![profile("fig3.3", 1000, 1_000_000)];
        let mut slow = profile("fig3.3", 1000, 1_000_000);
        slow.wall_ns = old[0].wall_ns * 3;
        let lax = diff(&old, std::slice::from_ref(&slow), &Thresholds::default());
        assert!(!lax.has_regression());
        let strict = Thresholds { gate_wall: true, ..Thresholds::default() };
        assert!(diff(&old, &[slow], &strict).has_regression());
    }

    #[test]
    fn sha_change_alone_is_a_neutral_note() {
        let old = vec![profile("fig3.3", 1000, 1_000_000)];
        let mut new = profile("fig3.3", 1000, 1_000_000);
        new.trace_sha = "cafebabe".to_owned();
        let r = diff(&old, &[new], &Thresholds::default());
        assert_eq!(r.entries[0].verdict, Verdict::Neutral);
        assert!(r.entries[0].notes[0].contains("trace bytes changed"));
    }
}
