//! # smartsock-profile
//!
//! Deterministic profiling over the smartsock testbed, in two layers:
//!
//! - [`fold`] turns exported telemetry span trees (simulated time) into
//!   per-name self-time/total-time/call-count profiles, folded-stack
//!   ("flamegraph collapsed") text, and a hot-path top-N report. Same
//!   seed, same bytes.
//! - [`baseline`] wraps `smartsock_bench::profile_run` captures into the
//!   canonical `BENCH_profile.json` schema and diffs two such files with
//!   configurable thresholds, classifying each experiment as
//!   improved/regressed/neutral. Deterministic metrics (event counts,
//!   span self-times) gate CI; wall-clock is reported but only gated on
//!   request, because baseline and CI hardware differ.
//!
//! The `profile` binary exposes both: `report` / `flame` over a trace
//! JSONL file, `bench` to regenerate `BENCH_profile.json`, and `diff` to
//! gate a new profile against the committed baseline.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod baseline;
pub mod fold;
pub mod sha;

pub use baseline::{
    diff, parse_profiles, render_diff, render_profiles, DiffReport, ExperimentDiff,
    ExperimentProfile, Thresholds, Verdict,
};
pub use fold::{fold, fold_traces, render_flame, render_report, Folded, SpanStat};
