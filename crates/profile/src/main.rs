//! `profile` — deterministic profiling and perf-baseline gating.
//!
//! ```text
//! profile report [--top N] <trace.jsonl>   hot-path table by self-time
//! profile flame <trace.jsonl>              flamegraph collapsed stacks
//! profile bench [--seed N] [--jobs N] [--zero-wall] [--out PATH] (all | id ...)
//!                                          run repro experiments under the
//!                                          profiler (sharded across --jobs
//!                                          workers), write BENCH_profile.json
//! profile diff [--threshold-pct P] [--gate-wall] [--wall-threshold-pct P]
//!              [--only PREFIX]
//!              <old.json> <new.json>       classify vs baseline; exit 1 on
//!                                          regression
//! ```
//!
//! `report` and `flame` are byte-deterministic for same-seed traces. The
//! default `bench` subset (fig3.3, table5.2, fleet.11/100/1k) is the CI
//! gate — cheap to run and between them they exercise the probe, monitor,
//! wizard and client span paths plus shard-pruned matching at fleet
//! scale. `diff --only` filters both documents by id prefix so one job
//! can gate one experiment family against the full committed baseline.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::io::Write as _;
use std::process::ExitCode;

use smartsock_profile::{baseline, fold};
use smartsock_telemetry::trace::Trace;

const USAGE: &str = "usage:\n  profile report [--top N] <trace.jsonl>\n  profile flame <trace.jsonl>\n  profile bench [--seed N] [--jobs N] [--zero-wall] [--out PATH] (all | experiment-id ...)\n  profile diff [--threshold-pct P] [--gate-wall] [--wall-threshold-pct P] [--only PREFIX] <old.json> <new.json>\n";

/// The CI gating subset: the two cheapest catalog experiments that drive
/// full scheduler runs (fig1.4 never builds one), plus the fleet family
/// up to 1k hosts so shard-pruned matching is perf-gated at scale
/// (fleet.10k stays nightly-only).
const DEFAULT_BENCH_IDS: &[&str] = &["fig3.3", "table5.2", "fleet.11", "fleet.100", "fleet.1k"];

fn load_trace(path: &str) -> Result<Trace, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let tr = Trace::parse(&src);
    if tr.skipped > 0 {
        eprintln!("profile: warning: skipped {} malformed line(s) in {path}", tr.skipped);
    }
    Ok(tr)
}

fn cmd_report(args: &[&str]) -> Result<String, String> {
    let (top, path) = match args {
        ["--top", n, path] => (n.parse::<usize>().map_err(|_| format!("not a count: {n}"))?, *path),
        [path] => (20, *path),
        _ => return Err(USAGE.to_owned()),
    };
    Ok(fold::render_report(&fold::fold(&load_trace(path)?), top))
}

fn cmd_flame(args: &[&str]) -> Result<String, String> {
    let [path] = args else { return Err(USAGE.to_owned()) };
    Ok(fold::render_flame(&fold::fold(&load_trace(path)?)))
}

fn cmd_bench(args: &[&str]) -> Result<String, String> {
    let mut seed = smartsock_bench::DEFAULT_SEED;
    let mut out_path: Option<String> = None;
    let mut jobs: usize = 1;
    let mut zero_wall = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("not a seed: {v}"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("bad --jobs value (want an integer >= 1): {v}")),
                };
            }
            "--zero-wall" => zero_wall = true,
            "--out" => out_path = Some(it.next().ok_or("--out needs a path")?.to_string()),
            id => ids.push(id.to_owned()),
        }
    }
    if ids.is_empty() {
        ids = DEFAULT_BENCH_IDS.iter().map(|s| (*s).to_owned()).collect();
    }
    let catalog = smartsock_bench::catalog();
    let selected: Vec<(&'static str, smartsock_bench::Experiment)> =
        if ids.iter().any(|i| i == "all") {
            catalog
        } else {
            ids.iter()
                .map(|want| {
                    catalog
                        .iter()
                        .find(|(id, _)| id == want)
                        .copied()
                        .ok_or_else(|| format!("unknown experiment id: {want}"))
                })
                .collect::<Result<_, _>>()?
        };
    let results =
        smartsock_bench::run_cells(smartsock_bench::executor::cells_for(&selected, &[seed]), jobs);
    let mut profiles = Vec::new();
    for r in &results {
        let (_, run) = r
            .outcome
            .as_ref()
            .map_err(|panic| format!("{} @ seed {}: PANIC: {panic}", r.id, r.seed))?;
        eprintln!(
            "profile: {}: {} sim events, {} trace(s), wall {} ms",
            r.id,
            run.sim_events,
            run.traces.len(),
            fold::ms(run.wall_ns)
        );
        let mut p = baseline::ExperimentProfile::from_run(run);
        if zero_wall {
            // For byte-comparing documents across runs/--jobs widths:
            // wall-clock is the one nondeterministic field in the schema.
            p.wall_ns = 0;
        }
        profiles.push(p);
    }
    let doc = baseline::render_profiles(&profiles);
    match out_path {
        Some(p) => {
            std::fs::write(&p, &doc).map_err(|e| format!("cannot write {p}: {e}"))?;
            Ok(format!("wrote {} experiment profile(s) to {p}\n", profiles.len()))
        }
        None => Ok(doc),
    }
}

/// Returns the rendered diff plus whether it regressed.
fn cmd_diff(args: &[&str]) -> Result<(String, bool), String> {
    let mut th = baseline::Thresholds::default();
    let mut only: Option<String> = None;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--threshold-pct" => {
                let v = it.next().ok_or("--threshold-pct needs a value")?;
                th.pct = v.parse().map_err(|_| format!("not a percentage: {v}"))?;
            }
            "--wall-threshold-pct" => {
                let v = it.next().ok_or("--wall-threshold-pct needs a value")?;
                th.wall_pct = v.parse().map_err(|_| format!("not a percentage: {v}"))?;
            }
            "--gate-wall" => th.gate_wall = true,
            "--only" => only = Some(it.next().ok_or("--only needs an id prefix")?.to_string()),
            p => paths.push(p),
        }
    }
    let [old_path, new_path] = paths[..] else { return Err(USAGE.to_owned()) };
    let load = |p: &str| -> Result<Vec<baseline::ExperimentProfile>, String> {
        let src = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        let mut profiles = baseline::parse_profiles(&src).map_err(|e| format!("{p}: {e}"))?;
        // `--only PREFIX` restricts BOTH documents before diffing, so a
        // baseline holding the full catalog can gate a partial rerun
        // without every absent experiment reading as a disappearance.
        if let Some(prefix) = &only {
            profiles.retain(|ep| ep.experiment_id.starts_with(prefix.as_str()));
            if profiles.is_empty() {
                return Err(format!("{p}: no experiments match --only {prefix}"));
            }
        }
        Ok(profiles)
    };
    let report = baseline::diff(&load(old_path)?, &load(new_path)?, &th);
    Ok((baseline::render_diff(&report), report.has_regression()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let result: Result<(String, bool), String> = match argv.split_first() {
        Some((&"report", rest)) => cmd_report(rest).map(|s| (s, false)),
        Some((&"flame", rest)) => cmd_flame(rest).map(|s| (s, false)),
        Some((&"bench", rest)) => cmd_bench(rest).map(|s| (s, false)),
        Some((&"diff", rest)) => cmd_diff(rest),
        _ => Err(USAGE.to_owned()),
    };
    match result {
        Ok((text, regressed)) => {
            let mut out = std::io::stdout().lock();
            let _ = out.write_all(text.as_bytes());
            let _ = out.flush();
            if regressed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("profile: {msg}");
            ExitCode::FAILURE
        }
    }
}
