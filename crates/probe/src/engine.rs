//! The backend-agnostic probe engine: counter differentiation.
//!
//! A probe scan has two halves. *Sampling* reads the `/proc` artefacts —
//! rendered text in the simulator, the real files on a live Linux box —
//! and *differentiation* turns cumulative counters (CPU jiffies, NIC
//! bytes, disk requests) into the usage fractions and per-second rates
//! of the §3.2.1 status report. [`ReportEngine`] is the differentiation
//! half, shared by both backends so a given counter history produces the
//! identical report either way.

use smartsock_hostsim::procfs::{CpuJiffies, DiskCounters, MemInfo, NetDevCounters};
use smartsock_proto::{HostName, Ip, ServerStatusReport, ServiceMask};
use smartsock_sim::SimTime;

/// One scan's parsed `/proc` values, backend-neutral.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProcSample {
    pub load1: f64,
    pub load5: f64,
    pub load15: f64,
    /// Cumulative CPU jiffies (`/proc/stat` `cpu` line).
    pub jiffies: CpuJiffies,
    /// Cumulative disk counters (2.4 `disk_io:`; zero when the kernel no
    /// longer exposes them — modern `/proc/stat` dropped the line).
    pub disk: DiskCounters,
    pub mem: MemInfo,
    /// Cumulative NIC counters for the reported interface.
    pub net: NetDevCounters,
}

/// Identity and constants of the reporting host, fixed across scans.
#[derive(Clone, Debug)]
pub struct ProbeIdentity {
    pub host: HostName,
    pub ip: Ip,
    pub bogomips: f64,
    pub iface: String,
    pub services: ServiceMask,
}

/// Differentiates successive [`ProcSample`]s into status reports.
///
/// Plain owned state (`Send`): the simulated daemon keeps one behind its
/// `Rc<RefCell<…>>` probe state, the live daemon owns one per thread.
#[derive(Clone, Debug, Default)]
pub struct ReportEngine {
    prev_jiffies: CpuJiffies,
    prev_sample_at: SimTime,
    prev_net: NetDevCounters,
    prev_disk: DiskCounters,
}

impl ReportEngine {
    pub fn new() -> ReportEngine {
        ReportEngine::default()
    }

    /// Forget all history — a restarted probe process has no previous
    /// scan, so its first report differentiates against zero.
    pub fn reset(&mut self) {
        *self = ReportEngine::default();
    }

    /// Differentiate `sample` against the previous scan and build the
    /// status report for time `now`. Updates the stored history.
    pub fn report(
        &mut self,
        now: SimTime,
        id: &ProbeIdentity,
        sample: &ProcSample,
    ) -> ServerStatusReport {
        let window = now.since(self.prev_sample_at).as_secs_f64().max(1e-9);
        let (cpu_user, cpu_nice, cpu_system, cpu_idle) = if sample.jiffies.total() == 0 {
            // No jiffies at all (t = 0 on a fresh box): call it idle.
            (0.0, 0.0, 0.0, 1.0)
        } else if self.prev_sample_at == SimTime::ZERO && self.prev_jiffies.total() == 0 {
            // First scan: differentiate against boot (all-zero counters).
            sample.jiffies.usage_since(&CpuJiffies::default())
        } else {
            sample.jiffies.usage_since(&self.prev_jiffies)
        };

        let mut r = ServerStatusReport::empty(id.host.clone(), id.ip);
        r.timestamp_ns = now.0;
        r.load1 = sample.load1;
        r.load5 = sample.load5;
        r.load15 = sample.load15;
        r.cpu_user = cpu_user;
        r.cpu_nice = cpu_nice;
        r.cpu_system = cpu_system;
        r.cpu_idle = cpu_idle;
        r.bogomips = id.bogomips;
        r.mem_total = sample.mem.total;
        r.mem_used = sample.mem.used;
        r.mem_free = sample.mem.free;
        r.mem_buffers = sample.mem.buffers;
        r.mem_cached = sample.mem.cached;
        // Disk counters report the activity *within this interval*.
        r.disk_allreq = sample.disk.allreq.saturating_sub(self.prev_disk.allreq);
        r.disk_rreq = sample.disk.rreq.saturating_sub(self.prev_disk.rreq);
        r.disk_rblocks = sample.disk.rblocks.saturating_sub(self.prev_disk.rblocks);
        r.disk_wreq = sample.disk.wreq.saturating_sub(self.prev_disk.wreq);
        r.disk_wblocks = sample.disk.wblocks.saturating_sub(self.prev_disk.wblocks);
        r.iface = id.iface.clone();
        r.net_rbytes_ps = sample.net.rbytes.saturating_sub(self.prev_net.rbytes) as f64 / window;
        r.net_rpackets_ps =
            sample.net.rpackets.saturating_sub(self.prev_net.rpackets) as f64 / window;
        r.net_tbytes_ps = sample.net.tbytes.saturating_sub(self.prev_net.tbytes) as f64 / window;
        r.net_tpackets_ps =
            sample.net.tpackets.saturating_sub(self.prev_net.tpackets) as f64 / window;
        r.services = id.services;

        self.prev_jiffies = sample.jiffies;
        self.prev_net = sample.net;
        self.prev_disk = sample.disk;
        self.prev_sample_at = now;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> ProbeIdentity {
        ProbeIdentity {
            host: HostName::new("helene"),
            ip: Ip::new(192, 168, 3, 10),
            bogomips: 3394.76,
            iface: "eth0".to_owned(),
            services: ServiceMask::COMPUTE,
        }
    }

    fn sample(user: u64, idle: u64, rbytes: u64) -> ProcSample {
        ProcSample {
            load1: 0.5,
            load5: 0.4,
            load15: 0.3,
            jiffies: CpuJiffies { user, nice: 0, system: 0, idle },
            disk: DiskCounters { allreq: 10, rreq: 6, rblocks: 48, wreq: 4, wblocks: 32 },
            mem: MemInfo {
                total: 256 << 20,
                used: 56 << 20,
                free: 200 << 20,
                shared: 0,
                buffers: 8 << 20,
                cached: 16 << 20,
            },
            net: NetDevCounters { rbytes, rpackets: rbytes / 1000, tbytes: 0, tpackets: 0 },
        }
    }

    #[test]
    fn zero_jiffies_report_as_idle() {
        let mut e = ReportEngine::new();
        let r = e.report(SimTime::ZERO, &identity(), &sample(0, 0, 0));
        assert_eq!(r.cpu_idle, 1.0);
        assert_eq!(r.cpu_user, 0.0);
    }

    #[test]
    fn successive_scans_differentiate_cpu_and_rates() {
        let mut e = ReportEngine::new();
        let _ = e.report(SimTime::ZERO, &identity(), &sample(100, 900, 1_000_000));
        // Two seconds later: +100 user jiffies, +100 idle, +2 MB received.
        let r = e.report(SimTime::from_secs(2), &identity(), &sample(200, 1000, 3_000_000));
        assert!((r.cpu_user - 0.5).abs() < 1e-9, "user = {}", r.cpu_user);
        assert!((r.cpu_idle - 0.5).abs() < 1e-9);
        assert!((r.net_rbytes_ps - 1_000_000.0).abs() < 1.0, "rate = {}", r.net_rbytes_ps);
        // Disk counters did not advance: the interval delta is zero.
        assert_eq!(r.disk_allreq, 0);
    }

    #[test]
    fn reset_rebaselines_like_a_fresh_process() {
        let mut e = ReportEngine::new();
        let _ = e.report(SimTime::ZERO, &identity(), &sample(100, 900, 5_000_000));
        e.reset();
        // After reset the next report differentiates against zero again.
        let r = e.report(SimTime::from_secs(10), &identity(), &sample(300, 700, 5_000_000));
        assert!((r.cpu_user - 0.3).abs() < 1e-9);
        assert!(r.net_rbytes_ps > 400_000.0, "counters re-baselined: {}", r.net_rbytes_ps);
    }

    #[test]
    fn counter_regression_clamps_to_zero_rates() {
        let mut e = ReportEngine::new();
        let _ = e.report(SimTime::ZERO, &identity(), &sample(100, 900, 9_000_000));
        let r = e.report(SimTime::from_secs(2), &identity(), &sample(100, 1100, 1_000));
        assert_eq!(r.net_rbytes_ps, 0.0, "regressed counter must not underflow");
    }

    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ReportEngine>();
    }
}
