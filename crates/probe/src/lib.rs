//! # smartsock-probe
//!
//! The server probe daemon (paper §3.2.1, §4.1).
//!
//! Every monitored server runs one probe. At a configurable interval
//! (2–10 s depending on the experiment) the probe:
//!
//! 1. renders and re-parses the five `/proc` files of Table 3.1 —
//!    `loadavg`, `stat` (CPU + disk), `meminfo`, `net/dev` — through
//!    [`smartsock_hostsim::procfs`], exercising the same text formats a
//!    2004 Linux kernel produced;
//! 2. differentiates cumulative counters (CPU jiffies, NIC bytes) against
//!    the previous scan to obtain usage fractions and per-second rates;
//! 3. formats the result as the sub-200-byte ASCII status report of
//!    §3.2.1 — decimal strings precisely so that endianness never matters —
//!    and sends it by UDP to the system monitor (port 1111).
//!
//! A failed host's probe goes silent; after three missed intervals the
//! system monitor expires the record (§4.1). The probe resumes reporting
//! when the host recovers.
//!
//! The §6 "UDP vs TCP" future-work item is implemented as
//! [`ProbeConfig::use_tcp`]: long reports on congested networks may switch
//! to the reliable stream transport at the cost of connection overhead.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod engine;

use std::cell::RefCell;
use std::rc::Rc;

use smartsock_hostsim::procfs;
use smartsock_hostsim::Host;
use smartsock_net::{Network, Payload};
use smartsock_proto::consts::{ports, timing};
use smartsock_proto::{Endpoint, ServerStatusReport};
use smartsock_sim::{Scheduler, SimDuration, SimTime};

pub use engine::{ProbeIdentity, ProcSample, ReportEngine};

/// Probe configuration.
#[derive(Clone, Debug)]
pub struct ProbeConfig {
    /// Reporting interval (default 2 s, the Table 5.2 setting).
    pub interval: SimDuration,
    /// Where the system monitor listens.
    pub monitor: Endpoint,
    /// Use the reliable stream transport instead of UDP (§6 extension).
    pub use_tcp: bool,
}

impl ProbeConfig {
    pub fn new(monitor_ip: smartsock_proto::Ip) -> ProbeConfig {
        ProbeConfig {
            interval: SimDuration::from_secs(timing::PROBE_INTERVAL_SECS),
            monitor: Endpoint::new(monitor_ip, ports::MON_SYS),
            use_tcp: false,
        }
    }

    pub fn with_interval(mut self, interval: SimDuration) -> ProbeConfig {
        self.interval = interval;
        self
    }

    pub fn over_tcp(mut self) -> ProbeConfig {
        self.use_tcp = true;
        self
    }
}

struct ProbeState {
    /// The backend-shared differentiation core (crate::engine) — the live
    /// daemon runs the identical code over the real `/proc`.
    engine: ReportEngine,
    reports_sent: u64,
    /// Restart generation. A scheduled tick carries the epoch it was
    /// armed under and dies quietly if the daemon was stopped or
    /// restarted since — stop/restart never double-schedules the loop.
    epoch: u64,
    running: bool,
}

/// One probe daemon instance.
#[derive(Clone)]
pub struct ServerProbe {
    host: Host,
    net: Network,
    cfg: ProbeConfig,
    st: Rc<RefCell<ProbeState>>,
}

impl ServerProbe {
    pub fn new(host: Host, net: Network, cfg: ProbeConfig) -> ServerProbe {
        ServerProbe {
            host,
            net,
            cfg,
            st: Rc::new(RefCell::new(ProbeState {
                engine: ReportEngine::new(),
                reports_sent: 0,
                epoch: 0,
                running: false,
            })),
        }
    }

    /// Start the periodic reporting loop. The first report goes out after
    /// one interval (the probe needs two scans to differentiate counters).
    pub fn start(&self, s: &mut Scheduler) {
        // Take the baseline scan now.
        let _ = self.scan(s.now());
        let epoch = {
            let mut st = self.st.borrow_mut();
            st.running = true;
            st.epoch
        };
        let probe = self.clone();
        s.schedule_in(self.cfg.interval, move |s| probe.tick(s, epoch));
    }

    /// Kill the daemon: the reporting loop halts after the current epoch's
    /// pending tick fires into a dead generation.
    pub fn stop(&self) {
        let mut st = self.st.borrow_mut();
        st.running = false;
        st.epoch += 1;
    }

    /// Restart a stopped daemon: re-baseline the differentiated counters
    /// (a fresh process has no previous scan) and resume the loop.
    pub fn restart(&self, s: &mut Scheduler) {
        {
            let mut st = self.st.borrow_mut();
            if st.running {
                return;
            }
            st.epoch += 1;
            st.engine.reset();
        }
        s.telemetry.counter_incr("probe-restarts");
        self.start(s);
    }

    /// The host this probe daemon runs on.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Whether the reporting loop is currently running.
    pub fn is_running(&self) -> bool {
        self.st.borrow().running
    }

    /// Number of reports sent so far.
    pub fn reports_sent(&self) -> u64 {
        self.st.borrow().reports_sent
    }

    fn tick(&self, s: &mut Scheduler, epoch: u64) {
        {
            let st = self.st.borrow();
            if !st.running || st.epoch != epoch {
                return;
            }
        }
        if !self.host.is_failed() {
            let span = s.telemetry.span_start("probe-report", self.host.name().as_str());
            let report = self.scan(s.now());
            self.send(s, report);
            s.telemetry.span_end(span);
        }
        let probe = self.clone();
        s.schedule_in(self.cfg.interval, move |s| probe.tick(s, epoch));
    }

    /// One probing pass: render the /proc files, parse them back, and
    /// hand the parsed sample to the shared [`ReportEngine`].
    fn scan(&self, now: SimTime) -> ServerStatusReport {
        let sample = self.host.sample(now);
        let uptime = now.as_secs_f64();

        // Render-then-parse: the identical artefacts a real kernel serves.
        let loadavg_text = procfs::render_loadavg(&sample, self.host.runnable(), 60);
        let stat_text = procfs::render_stat(&sample, uptime);
        let meminfo_text = procfs::render_meminfo(&sample);
        let netdev_text = procfs::render_net_dev(&sample, "eth0");

        let (load1, load5, load15) = procfs::parse_loadavg(&loadavg_text)
            .expect("invariant: parsing our own rendered loadavg");
        let jiffies =
            procfs::parse_stat_cpu(&stat_text).expect("invariant: parsing our own rendered stat");
        let disk = procfs::parse_stat_disk(&stat_text)
            .expect("invariant: parsing our own rendered disk_io");
        let mem = procfs::parse_meminfo(&meminfo_text)
            .expect("invariant: parsing our own rendered meminfo");
        let net = procfs::parse_net_dev(&netdev_text, "eth0")
            .expect("invariant: parsing our own rendered net/dev for the iface we rendered");

        let id = ProbeIdentity {
            host: self.host.name(),
            ip: self.host.ip(),
            bogomips: self.host.cpu_model().bogomips,
            iface: "eth0".to_owned(),
            services: self.host.services(),
        };
        let parsed = ProcSample { load1, load5, load15, jiffies, disk, mem, net };
        self.st.borrow_mut().engine.report(now, &id, &parsed)
    }

    fn send(&self, s: &mut Scheduler, report: ServerStatusReport) {
        let line = report.encode_ascii();
        let bytes = line.len() as u64;
        let from =
            Endpoint::new(self.host.ip(), 40000 + (self.st.borrow().reports_sent % 1000) as u16);
        s.telemetry.counter_add_labeled("probe-report-bytes", self.host.name().as_str(), bytes);
        s.telemetry.counter_incr("probe-reports");
        self.host.note_tx(bytes + 28, 1);
        let payload = Payload::data(line.into_bytes());
        if self.cfg.use_tcp {
            self.net.send_stream(s, from, self.cfg.monitor, payload);
        } else {
            self.net.send_udp(s, from, self.cfg.monitor, payload, None);
        }
        self.st.borrow_mut().reports_sent += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_hostsim::{CpuModel, HostConfig, Workload};
    use smartsock_net::{HostParams, LinkParams, NetworkBuilder};
    use smartsock_proto::Ip;

    fn rig() -> (Scheduler, Network, Host, Rc<RefCell<Vec<ServerStatusReport>>>) {
        let mut b = NetworkBuilder::new(99);
        let server = b.host("helene", Ip::new(192, 168, 3, 10), HostParams::testbed());
        let mon = b.host("monitor", Ip::new(192, 168, 3, 1), HostParams::testbed());
        b.duplex(server, mon, LinkParams::lan_100mbps());
        let net = b.build();
        let host =
            Host::new(HostConfig::new("helene", Ip::new(192, 168, 3, 10), CpuModel::P4_1700, 256));

        let got: Rc<RefCell<Vec<ServerStatusReport>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&got);
        net.bind_udp(Endpoint::new(Ip::new(192, 168, 3, 1), ports::MON_SYS), move |_s, d| {
            let text = std::str::from_utf8(&d.payload.data).unwrap();
            sink.borrow_mut().push(ServerStatusReport::parse_ascii(text).unwrap());
        });
        (Scheduler::new(), net, host, got)
    }

    #[test]
    fn probe_reports_at_the_configured_interval() {
        let (mut s, net, host, got) = rig();
        let probe = ServerProbe::new(
            host,
            net.clone(),
            ProbeConfig::new(Ip::new(192, 168, 3, 1)).with_interval(SimDuration::from_secs(2)),
        );
        probe.start(&mut s);
        s.run_until(SimTime::from_secs(11));
        // Reports at t = 2,4,6,8,10.
        assert_eq!(got.borrow().len(), 5);
        assert_eq!(probe.reports_sent(), 5);
        assert_eq!(got.borrow()[0].host.as_str(), "helene");
        assert!((got.borrow()[0].bogomips - 3394.76).abs() < 0.01);
    }

    #[test]
    fn idle_host_reports_idle_cpu_and_zero_load() {
        let (mut s, net, host, got) = rig();
        ServerProbe::new(host, net, ProbeConfig::new(Ip::new(192, 168, 3, 1))).start(&mut s);
        s.run_until(SimTime::from_secs(5));
        let r = got.borrow()[0].clone();
        assert!(r.cpu_idle > 0.98, "idle = {}", r.cpu_idle);
        assert!(r.load1 < 0.01);
    }

    #[test]
    fn busy_host_reports_load_and_cpu_usage() {
        let (mut s, net, host, got) = rig();
        host.spawn_workload(&mut s, &Workload::super_pi(25)).unwrap();
        ServerProbe::new(host, net, ProbeConfig::new(Ip::new(192, 168, 3, 1))).start(&mut s);
        s.run_until(SimTime::from_secs(121));
        let r = got.borrow().last().unwrap().clone();
        assert!(r.cpu_idle < 0.05, "idle = {}", r.cpu_idle);
        assert!(r.cpu_user > 0.9);
        assert!(r.load1 > 0.8, "load1 = {}", r.load1);
        // SuperPI(25) holds 150 MB.
        assert!(r.mem_free < 100 << 20);
    }

    #[test]
    fn failed_host_goes_silent_and_resumes() {
        let (mut s, net, host, got) = rig();
        let probe = ServerProbe::new(host.clone(), net, ProbeConfig::new(Ip::new(192, 168, 3, 1)));
        probe.start(&mut s);
        s.run_until(SimTime::from_secs(5)); // t=2,4 → 2 reports
        assert_eq!(got.borrow().len(), 2);
        host.fail();
        s.run_until(SimTime::from_secs(11)); // silence
        assert_eq!(got.borrow().len(), 2);
        host.recover();
        s.run_until(SimTime::from_secs(15)); // resumes at t=12,14
        assert_eq!(got.borrow().len(), 4);
    }

    #[test]
    fn reports_stay_under_200_bytes_and_carry_rates() {
        let (mut s, net, host, got) = rig();
        host.note_tx(0, 0);
        ServerProbe::new(host.clone(), net, ProbeConfig::new(Ip::new(192, 168, 3, 1)))
            .start(&mut s);
        // Generate some NIC traffic between scans.
        s.schedule_in(SimDuration::from_secs(1), {
            let h = host.clone();
            move |_| h.note_rx(2_000_000, 1500)
        });
        s.run_until(SimTime::from_secs(3));
        let r = got.borrow()[0].clone();
        assert!(r.encode_ascii().len() < 200);
        // 2 MB over a 2 s window ≈ 1 MB/s.
        assert!((r.net_rbytes_ps - 1_000_000.0).abs() < 50_000.0, "rate {}", r.net_rbytes_ps);
    }

    #[test]
    fn tcp_mode_delivers_via_stream_transport() {
        let (mut s, net, host, _got) = rig();
        let stream_got = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&stream_got);
        net.bind_stream(Endpoint::new(Ip::new(192, 168, 3, 1), ports::MON_SYS), move |_s, m| {
            assert!(ServerStatusReport::parse_ascii(std::str::from_utf8(&m.payload.data).unwrap())
                .is_ok());
            *sink.borrow_mut() += 1;
        });
        ServerProbe::new(host, net, ProbeConfig::new(Ip::new(192, 168, 3, 1)).over_tcp())
            .start(&mut s);
        s.run_until(SimTime::from_secs(5));
        assert_eq!(*stream_got.borrow(), 2);
    }

    #[test]
    fn probe_bandwidth_matches_table_5_2_scale() {
        // §5.2: ~190-byte reports every 2 s ⇒ ~0.1 KB/s payload, well under
        // the 0.5–0.6 KBps the paper measured with headers and retries.
        let (mut s, net, host, _got) = rig();
        ServerProbe::new(host, net, ProbeConfig::new(Ip::new(192, 168, 3, 1))).start(&mut s);
        s.run_until(SimTime::from_secs(60));
        let bytes = s.telemetry.counter_labeled("probe-report-bytes", "helene");
        let rate = bytes as f64 / 60.0;
        assert!(rate > 40.0 && rate < 620.0, "probe payload rate {rate} B/s");
    }
}
