//! The simulated server host: CPU scheduler, counters, failure injection.

use std::cell::RefCell;
use std::rc::Rc;

use smartsock_proto::{HostName, Ip, ServiceMask};
use smartsock_sim::{Scheduler, SimDuration, SimTime};

use crate::cpu::{CpuModel, CpuTable, CpuTask, OnDone};
use crate::load::LoadAvg;
use crate::mem::Memory;
use crate::workload::{IoRates, Workload};

/// Static configuration of one host (a row of Table 5.1).
#[derive(Clone, Debug)]
pub struct HostConfig {
    pub name: HostName,
    pub ip: Ip,
    pub cpu: CpuModel,
    pub ram_bytes: u64,
    pub iface: String,
}

impl HostConfig {
    pub fn new(name: &str, ip: Ip, cpu: CpuModel, ram_mb: u64) -> HostConfig {
        HostConfig {
            name: HostName::new(name),
            ip,
            cpu,
            ram_bytes: ram_mb << 20,
            iface: "eth0".to_owned(),
        }
    }
}

pub(crate) struct HostState {
    pub cfg: HostConfig,
    pub cpu: CpuTable,
    pub load: LoadAvg,
    pub mem: Memory,
    /// Cumulative CPU busy seconds (user-attributed), like /proc/stat.
    pub busy_user: f64,
    pub busy_system: f64,
    pub busy_since: SimTime,
    /// Aggregate background IO rates from workloads.
    pub io: IoRates,
    pub io_since: SimTime,
    /// Cumulative disk counters (the `disk_io` line of /proc/stat).
    pub disk_rreq: f64,
    pub disk_rblocks: f64,
    pub disk_wreq: f64,
    pub disk_wblocks: f64,
    /// Cumulative NIC counters (/proc/net/dev), fed by the deployment.
    pub net_rbytes: u64,
    pub net_rpackets: u64,
    pub net_tbytes: u64,
    pub net_tpackets: u64,
    /// Failure injection: a failed host's probe stops reporting (§3.2.2)
    /// and its services stop answering.
    pub failed: bool,
    /// Memory owned by each live task, released on completion/kill.
    pub task_mem: std::collections::BTreeMap<u64, u64>,
    /// Services this host advertises (§6 extension); reported by the probe.
    pub services: ServiceMask,
}

/// Why a task could not be spawned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpawnError {
    /// The anonymous allocation failed even after cache reclaim.
    OutOfMemory,
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::OutOfMemory => f.write_str("allocation failed (out of memory)"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// Cheaply clonable handle to one simulated host.
#[derive(Clone)]
pub struct Host {
    inner: Rc<RefCell<HostState>>,
}

/// A snapshot of everything the server probe reads (Table 3.1).
#[derive(Clone, Debug, PartialEq)]
pub struct HostSample {
    pub load1: f64,
    pub load5: f64,
    pub load15: f64,
    /// Cumulative busy seconds — the probe differentiates consecutive
    /// samples to get usage fractions, exactly like reading /proc/stat.
    pub busy_user: f64,
    pub busy_system: f64,
    pub mem_total: u64,
    pub mem_free: u64,
    pub mem_buffers: u64,
    pub mem_cached: u64,
    pub disk_rreq: u64,
    pub disk_rblocks: u64,
    pub disk_wreq: u64,
    pub disk_wblocks: u64,
    pub net_rbytes: u64,
    pub net_rpackets: u64,
    pub net_tbytes: u64,
    pub net_tpackets: u64,
}

impl Host {
    pub fn new(cfg: HostConfig) -> Host {
        let mem = Memory::fresh(cfg.ram_bytes);
        Host {
            inner: Rc::new(RefCell::new(HostState {
                cfg,
                cpu: CpuTable::default(),
                load: LoadAvg::default(),
                mem,
                busy_user: 0.0,
                busy_system: 0.0,
                busy_since: SimTime::ZERO,
                io: IoRates::default(),
                io_since: SimTime::ZERO,
                disk_rreq: 0.0,
                disk_rblocks: 0.0,
                disk_wreq: 0.0,
                disk_wblocks: 0.0,
                net_rbytes: 0,
                net_rpackets: 0,
                net_tbytes: 0,
                net_tpackets: 0,
                failed: false,
                task_mem: Default::default(),
                services: ServiceMask::NONE,
            })),
        }
    }

    pub fn name(&self) -> HostName {
        self.inner.borrow().cfg.name.clone()
    }

    pub fn ip(&self) -> Ip {
        self.inner.borrow().cfg.ip
    }

    pub fn cpu_model(&self) -> CpuModel {
        self.inner.borrow().cfg.cpu
    }

    pub fn is_failed(&self) -> bool {
        self.inner.borrow().failed
    }

    /// Crash the host: services stop, the probe goes silent.
    pub fn fail(&self) {
        self.inner.borrow_mut().failed = true;
    }

    /// Bring a crashed host back.
    pub fn recover(&self) {
        self.inner.borrow_mut().failed = false;
    }

    /// Hard-crash the host: mark it failed and kill every running task —
    /// their `on_done` callbacks never fire and their memory is released.
    /// A crashed host keeps its cumulative counters frozen until
    /// [`Host::reboot`] zeroes them.
    pub fn crash(&self, s: &mut Scheduler) {
        self.fail();
        let ids: Vec<u64> = self.inner.borrow().cpu.tasks.keys().copied().collect();
        for id in ids {
            self.kill_task(s, id);
        }
    }

    /// Reboot a crashed host: clear the failure flag and reset everything
    /// a fresh kernel would reset — cumulative /proc/stat busy time, disk
    /// and NIC counters, the page cache, and the load averages. Services
    /// stay advertised (they are configuration, re-announced by the
    /// restarted daemons).
    pub fn reboot(&self, s: &mut Scheduler) {
        let now = s.now();
        let mut st = self.inner.borrow_mut();
        st.failed = false;
        st.busy_user = 0.0;
        st.busy_system = 0.0;
        st.busy_since = now;
        st.io = IoRates::default();
        st.io_since = now;
        st.disk_rreq = 0.0;
        st.disk_rblocks = 0.0;
        st.disk_wreq = 0.0;
        st.disk_wblocks = 0.0;
        st.net_rbytes = 0;
        st.net_rpackets = 0;
        st.net_tbytes = 0;
        st.net_tpackets = 0;
        st.mem = Memory::fresh(st.cfg.ram_bytes);
        st.load = LoadAvg::default();
    }

    /// Advertise a service class (§6 extension). Daemons call this when
    /// they install themselves; the probe reports the accumulated mask.
    pub fn register_service(&self, mask: ServiceMask) {
        self.inner.borrow_mut().services |= mask;
    }

    /// The currently advertised services.
    pub fn services(&self) -> ServiceMask {
        self.inner.borrow().services
    }

    // ------------------------------------------------------------------
    // Compute tasks
    // ------------------------------------------------------------------

    /// Start a finite compute task of `work` madd units using `mem_bytes`
    /// of anonymous memory. Fails with [`SpawnError::OutOfMemory`] when the
    /// allocation cannot be satisfied. `on_done` fires when the work
    /// completes; memory is released then.
    pub fn spawn_compute(
        &self,
        s: &mut Scheduler,
        work: f64,
        mem_bytes: u64,
        on_done: impl FnOnce(&mut Scheduler) + 'static,
    ) -> Result<u64, SpawnError> {
        self.spawn_inner(s, work, mem_bytes, IoRates::default(), Some(Box::new(on_done)))
    }

    /// Start a workload (possibly perpetual: SuperPI, IO hogs).
    pub fn spawn_workload(&self, s: &mut Scheduler, w: &Workload) -> Result<u64, SpawnError> {
        // A one-shot cache fill models the workload's initial file churn
        // (Table 4.1's cached growth).
        if w.initial_cache_bytes > 0 {
            self.inner.borrow_mut().mem.grow_cache(w.initial_cache_bytes);
        }
        self.spawn_inner(s, w.cpu_work, w.mem_bytes, w.io, None)
    }

    fn spawn_inner(
        &self,
        s: &mut Scheduler,
        work: f64,
        mem_bytes: u64,
        io: IoRates,
        on_done: Option<OnDone>,
    ) -> Result<u64, SpawnError> {
        let now = s.now();
        let id = {
            let mut st = self.inner.borrow_mut();
            if !st.mem.alloc(mem_bytes) {
                return Err(SpawnError::OutOfMemory);
            }
            st.sync_io(now);
            st.sync_busy_only(now); // fold elapsed busy time at the OLD queue length
            st.io = st.io + io;
            let id = st.cpu.insert(CpuTask {
                remaining: work,
                weight: 1.0,
                last_update: now,
                rate: 0.0,
                completion_event: None,
                on_done,
                system_time: false,
            });
            st.task_mem.insert(id, mem_bytes);
            st.sync_load_and_busy(now);
            id
        };
        self.recompute(s);
        Ok(id)
    }

    /// Terminate a task (releases its memory; its `on_done` never fires).
    pub fn kill_task(&self, s: &mut Scheduler, id: u64) {
        let removed = {
            let now = s.now();
            let mut st = self.inner.borrow_mut();
            st.cpu.advance_to(now);
            st.sync_busy_only(now); // fold busy time before the queue shrinks
            let t = st.cpu.tasks.remove(&id);
            if t.is_some() {
                if let Some(bytes) = st.task_mem.remove(&id) {
                    st.mem.release(bytes);
                }
                st.sync_load_and_busy(now);
            }
            t
        };
        if let Some(t) = removed {
            if let Some(ev) = t.completion_event {
                s.cancel(ev);
            }
            self.recompute(s);
        }
    }

    /// Number of runnable tasks.
    pub fn runnable(&self) -> usize {
        self.inner.borrow().cpu.runnable()
    }

    fn recompute(&self, s: &mut Scheduler) {
        let now = s.now();
        let plan: Vec<(u64, Option<smartsock_sim::EventId>, SimTime)> = {
            let mut st = self.inner.borrow_mut();
            st.cpu.advance_to(now);
            let rate = st.cfg.cpu.compute_rate;
            st.cpu.refit(rate);
            st.cpu
                .tasks
                .iter_mut()
                .map(|(&id, t)| {
                    let stale = t.completion_event.take();
                    let at = if t.remaining.is_finite() && t.rate > 0.0 {
                        now + SimDuration::from_secs_f64(t.remaining / t.rate)
                    } else {
                        SimTime::FAR_FUTURE
                    };
                    (id, stale, at)
                })
                .collect()
        };
        for (id, stale, at) in plan {
            if let Some(ev) = stale {
                s.cancel(ev);
            }
            if at >= SimTime::FAR_FUTURE {
                continue;
            }
            let host = self.clone();
            let ev = s.schedule_at(at, move |s| host.task_completed(s, id));
            if let Some(t) = self.inner.borrow_mut().cpu.tasks.get_mut(&id) {
                t.completion_event = Some(ev);
            }
        }
    }

    fn task_completed(&self, s: &mut Scheduler, id: u64) {
        let done = {
            let now = s.now();
            let mut st = self.inner.borrow_mut();
            st.cpu.advance_to(now);
            st.sync_busy_only(now); // fold busy time before the queue shrinks
            match st.cpu.tasks.remove(&id) {
                None => None,
                Some(t) => {
                    if let Some(bytes) = st.task_mem.remove(&id) {
                        st.mem.release(bytes);
                    }
                    st.sync_load_and_busy(now);
                    Some(t.on_done)
                }
            }
        };
        let Some(cb) = done else { return };
        self.recompute(s);
        if let Some(cb) = cb {
            cb(s);
        }
    }

    // ------------------------------------------------------------------
    // Counters and sampling
    // ------------------------------------------------------------------

    /// Record transmitted traffic on the NIC counters.
    pub fn note_tx(&self, bytes: u64, packets: u64) {
        let mut st = self.inner.borrow_mut();
        st.net_tbytes += bytes;
        st.net_tpackets += packets;
    }

    /// Record received traffic on the NIC counters.
    pub fn note_rx(&self, bytes: u64, packets: u64) {
        let mut st = self.inner.borrow_mut();
        st.net_rbytes += bytes;
        st.net_rpackets += packets;
    }

    /// Record direct disk activity (e.g. a file server's reads).
    pub fn note_disk(&self, rreq: u64, rblocks: u64, wreq: u64, wblocks: u64) {
        let mut st = self.inner.borrow_mut();
        st.disk_rreq += rreq as f64;
        st.disk_rblocks += rblocks as f64;
        st.disk_wreq += wreq as f64;
        st.disk_wblocks += wblocks as f64;
    }

    /// Everything the probe reads, as of `now`.
    pub fn sample(&self, now: SimTime) -> HostSample {
        let mut st = self.inner.borrow_mut();
        st.sync_io(now);
        st.sync_busy_only(now);
        let (load1, load5, load15) = st.load.sample(now);
        HostSample {
            load1,
            load5,
            load15,
            busy_user: st.busy_user,
            busy_system: st.busy_system,
            mem_total: st.mem.total,
            mem_free: st.mem.free,
            mem_buffers: st.mem.buffers,
            mem_cached: st.mem.cached,
            disk_rreq: st.disk_rreq as u64,
            disk_rblocks: st.disk_rblocks as u64,
            disk_wreq: st.disk_wreq as u64,
            disk_wblocks: st.disk_wblocks as u64,
            net_rbytes: st.net_rbytes,
            net_rpackets: st.net_rpackets,
            net_tbytes: st.net_tbytes,
            net_tpackets: st.net_tpackets,
        }
    }

    /// Free memory as the requirement language sees it (`host_memory_free`).
    pub fn mem_free(&self) -> u64 {
        self.inner.borrow().mem.free
    }
}

impl HostState {
    /// Fold elapsed IO rates into the cumulative disk counters and cache.
    fn sync_io(&mut self, now: SimTime) {
        let dt = now.since(self.io_since).as_secs_f64();
        if dt > 0.0 {
            self.disk_rreq += self.io.rreq_ps * dt;
            self.disk_rblocks += self.io.rblocks_ps * dt;
            self.disk_wreq += self.io.wreq_ps * dt;
            self.disk_wblocks += self.io.wblocks_ps * dt;
            self.mem.grow_cache((self.io.cache_growth_ps * dt) as u64);
        }
        self.io_since = now;
    }

    /// Fold CPU busy time then record the new queue length.
    fn sync_load_and_busy(&mut self, now: SimTime) {
        self.sync_busy_only(now);
        self.load.set_queue_len(now, self.cpu.runnable());
    }

    fn sync_busy_only(&mut self, now: SimTime) {
        let dt = now.since(self.busy_since).as_secs_f64();
        if dt > 0.0 && self.cpu.runnable() > 0 {
            // The CPU is saturated whenever at least one task runs. Time is
            // attributed user/system by the weight of tasks flagged as
            // system work (IO daemons), with a 1% kernel floor.
            let total_w: f64 = self.cpu.tasks.values().map(|t| t.weight).sum();
            let sys_w: f64 =
                self.cpu.tasks.values().filter(|t| t.system_time).map(|t| t.weight).sum();
            let sys_frac = (sys_w / total_w.max(1e-12)).max(0.01);
            self.busy_user += dt * (1.0 - sys_frac);
            self.busy_system += dt * sys_frac;
        }
        self.busy_since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn host() -> Host {
        Host::new(HostConfig::new("helene", Ip::new(192, 168, 3, 1), CpuModel::P4_1700, 256))
    }

    #[test]
    fn compute_task_finishes_at_work_over_rate() {
        let h = host();
        let mut s = Scheduler::new();
        let done_at = Rc::new(Cell::new(0.0f64));
        let d = Rc::clone(&done_at);
        // 16.5e6 madds at 16.5e6 madds/s = 1 second.
        h.spawn_compute(&mut s, 16.5e6, 1 << 20, move |s| d.set(s.now().as_secs_f64())).unwrap();
        s.run();
        assert!((done_at.get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_tasks_share_the_cpu_and_finish_late() {
        let h = host();
        let mut s = Scheduler::new();
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let d = Rc::clone(&done);
            h.spawn_compute(&mut s, 16.5e6, 1 << 20, move |_| d.set(d.get() + 1)).unwrap();
        }
        s.run();
        assert_eq!(done.get(), 2);
        // Two equal tasks sharing: both finish at 2 s.
        assert!((s.now().as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn perpetual_workload_slows_compute_tasks() {
        let h = host();
        let mut s = Scheduler::new();
        h.spawn_workload(&mut s, &Workload::super_pi(25)).unwrap();
        let done_at = Rc::new(Cell::new(0.0f64));
        let d = Rc::clone(&done_at);
        h.spawn_compute(&mut s, 16.5e6, 1 << 20, move |s| d.set(s.now().as_secs_f64())).unwrap();
        s.run_until(SimTime::from_secs(100));
        // Sharing with the hog: 2 s instead of 1 s.
        assert!((done_at.get() - 2.0).abs() < 1e-6, "done at {}", done_at.get());
    }

    #[test]
    fn load_average_rises_under_superpi() {
        let h = host();
        let mut s = Scheduler::new();
        h.spawn_workload(&mut s, &Workload::super_pi(25)).unwrap();
        s.run_until(SimTime::from_secs(600));
        let sample = h.sample(s.now());
        assert!(sample.load1 > 0.95, "load1 = {}", sample.load1);
        assert!(sample.load15 > 0.45, "load15 = {}", sample.load15);
    }

    #[test]
    fn busy_counters_differentiate_to_usage_fractions() {
        let h = host();
        let mut s = Scheduler::new();
        let s0 = h.sample(s.now());
        h.spawn_compute(&mut s, 16.5e6 * 5.0, 1 << 20, |_| {}).unwrap();
        s.run(); // 5 seconds of compute
        s.schedule_in(SimDuration::from_secs(5), |_| {}); // 5 idle seconds
        s.run();
        let s1 = h.sample(s.now());
        let window = 10.0;
        let busy = (s1.busy_user + s1.busy_system) - (s0.busy_user + s0.busy_system);
        let usage = busy / window;
        assert!((usage - 0.5).abs() < 0.01, "usage = {usage}");
    }

    #[test]
    fn memory_is_released_when_tasks_finish_or_die() {
        let h = host();
        let mut s = Scheduler::new();
        let free0 = h.mem_free();
        let id = h.spawn_workload(&mut s, &Workload::cpu_hog("hog", 50 << 20)).unwrap();
        assert!(h.mem_free() < free0);
        h.kill_task(&mut s, id);
        assert_eq!(h.mem_free(), free0);
        assert_eq!(h.runnable(), 0);
    }

    #[test]
    fn oom_spawn_fails_cleanly() {
        let h = host();
        let mut s = Scheduler::new();
        assert!(h.spawn_compute(&mut s, 1.0, 10 << 30, |_| {}).is_err());
        assert_eq!(h.runnable(), 0);
    }

    #[test]
    fn failure_injection_flags() {
        let h = host();
        assert!(!h.is_failed());
        h.fail();
        assert!(h.is_failed());
        h.recover();
        assert!(!h.is_failed());
    }

    #[test]
    fn nic_and_disk_counters_accumulate() {
        let h = host();
        h.note_tx(1000, 2);
        h.note_tx(500, 1);
        h.note_rx(99, 1);
        h.note_disk(1, 8, 2, 16);
        let sample = h.sample(SimTime::ZERO);
        assert_eq!(sample.net_tbytes, 1500);
        assert_eq!(sample.net_tpackets, 3);
        assert_eq!(sample.net_rbytes, 99);
        assert_eq!(sample.disk_wblocks, 16);
    }

    use std::rc::Rc;
}
