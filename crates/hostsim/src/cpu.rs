//! CPU models and the fair-share compute scheduler.

use std::collections::BTreeMap;

use smartsock_sim::{EventId, Scheduler, SimTime};

/// A machine's processor, as the kernel and the matrix benchmark see it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Marketing name, e.g. `"P4 2.4GHz"`.
    pub name: &'static str,
    /// Kernel-reported BogoMIPS (Table 5.1) — exposed to the requirement
    /// language as `host_cpu_bogomips`.
    pub bogomips: f64,
    /// Sustained throughput on the thesis's matrix-multiplication inner
    /// loop, in multiply-add operations per second. Calibrated so that the
    /// distributed-matmul experiments land near the paper's Tables 5.3–5.6
    /// (and preserving Fig 5.2's ordering: P3-866 ≈ 20 M, P4-2.4 ≈ 27 M,
    /// P4-1.6…1.8 ≈ 16–17 M madds/s).
    pub compute_rate: f64,
}

impl CpuModel {
    pub const P3_866: CpuModel =
        CpuModel { name: "P3 866MHz", bogomips: 1730.15, compute_rate: 20.0e6 };
    pub const P4_2400: CpuModel =
        CpuModel { name: "P4 2.4GHz", bogomips: 4771.02, compute_rate: 27.0e6 };
    pub const P4_1600: CpuModel =
        CpuModel { name: "P4 1.6GHz", bogomips: 3185.04, compute_rate: 16.0e6 };
    pub const P4_1700: CpuModel =
        CpuModel { name: "P4 1.7GHz", bogomips: 3394.76, compute_rate: 16.5e6 };
    pub const P4_1800: CpuModel =
        CpuModel { name: "P4 1.8GHz", bogomips: 3591.37, compute_rate: 17.0e6 };
}

pub(crate) type OnDone = Box<dyn FnOnce(&mut Scheduler)>;

/// One schedulable compute task.
pub(crate) struct CpuTask {
    /// Remaining work in madd units; `f64::INFINITY` for perpetual hogs.
    pub remaining: f64,
    /// Relative scheduler weight (all paper workloads use 1.0).
    pub weight: f64,
    pub last_update: SimTime,
    pub rate: f64,
    pub completion_event: Option<EventId>,
    pub on_done: Option<OnDone>,
    /// Counted as user or system time in `/proc/stat`.
    pub system_time: bool,
}

/// Fair-share CPU: runnable tasks split `compute_rate` by weight.
///
/// Mirrors the fluid-flow pattern of `smartsock-net`: on every task
/// arrival/departure, per-task rates are refit and completion events are
/// rescheduled.
#[derive(Default)]
pub(crate) struct CpuTable {
    pub tasks: BTreeMap<u64, CpuTask>,
    next_id: u64,
}

impl CpuTable {
    pub fn insert(&mut self, task: CpuTask) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.tasks.insert(id, task);
        id
    }

    /// Bring every task's remaining work up to date at `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        for t in self.tasks.values_mut() {
            let dt = now.since(t.last_update).as_secs_f64();
            if t.remaining.is_finite() {
                t.remaining = (t.remaining - t.rate * dt).max(0.0);
            }
            t.last_update = now;
        }
    }

    /// Refit rates: weighted fair share of `compute_rate`.
    pub fn refit(&mut self, compute_rate: f64) {
        let total_weight: f64 = self.tasks.values().map(|t| t.weight).sum();
        if total_weight <= 0.0 {
            return;
        }
        for t in self.tasks.values_mut() {
            t.rate = compute_rate * t.weight / total_weight;
        }
    }

    /// Current run-queue length (for load averages).
    pub fn runnable(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(remaining: f64) -> CpuTask {
        CpuTask {
            remaining,
            weight: 1.0,
            last_update: SimTime::ZERO,
            rate: 0.0,
            completion_event: None,
            on_done: None,
            system_time: false,
        }
    }

    #[test]
    fn single_task_gets_the_whole_cpu() {
        let mut c = CpuTable::default();
        let id = c.insert(task(1e6));
        c.refit(20e6);
        assert_eq!(c.tasks[&id].rate, 20e6);
    }

    #[test]
    fn two_tasks_split_evenly() {
        let mut c = CpuTable::default();
        let a = c.insert(task(1e6));
        let b = c.insert(task(1e6));
        c.refit(20e6);
        assert_eq!(c.tasks[&a].rate, 10e6);
        assert_eq!(c.tasks[&b].rate, 10e6);
    }

    #[test]
    fn weights_bias_the_split() {
        let mut c = CpuTable::default();
        let a = c.insert(CpuTask { weight: 3.0, ..task(1e6) });
        let b = c.insert(task(1e6));
        c.refit(20e6);
        assert_eq!(c.tasks[&a].rate, 15e6);
        assert_eq!(c.tasks[&b].rate, 5e6);
    }

    #[test]
    fn advance_handles_infinite_hogs() {
        let mut c = CpuTable::default();
        let a = c.insert(task(f64::INFINITY));
        c.refit(20e6);
        c.advance_to(SimTime::from_secs(100));
        assert!(c.tasks[&a].remaining.is_infinite());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the claim
    fn calibration_ordering_matches_fig_5_2() {
        // The paper's benchmark: P3-866 and P4-2.4 beat the P4 1.6–1.8 GHz
        // machines on this program.
        assert!(CpuModel::P4_2400.compute_rate > CpuModel::P3_866.compute_rate);
        assert!(CpuModel::P3_866.compute_rate > CpuModel::P4_1800.compute_rate);
        assert!(CpuModel::P4_1800.compute_rate > CpuModel::P4_1700.compute_rate);
        assert!(CpuModel::P4_1700.compute_rate > CpuModel::P4_1600.compute_rate);
        // ... even though BogoMIPS ranks the other way around:
        assert!(CpuModel::P4_1600.bogomips > CpuModel::P3_866.bogomips);
    }
}
