//! `/proc` text rendering and parsing.
//!
//! The real server probe (paper §4.1) opens five procfs files:
//!
//! ```text
//! loadavg_fname  = "/proc/loadavg"
//! cpuusage_fname = "/proc/stat"
//! memusage_fname = "/proc/meminfo"
//! diskio_fname   = "/proc/stat"
//! netio_fname    = "/proc/net/dev"
//! ```
//!
//! To keep the probe's parse path faithful, the simulated host renders its
//! state in the same (Linux 2.4-era) text formats and the probe parses the
//! text back — round-tripping through the exact artifact a 2004 kernel
//! produced.

use crate::host::HostSample;

/// Jiffies per second (`USER_HZ` on the thesis machines).
pub const HZ: f64 = 100.0;

// ----------------------------------------------------------------------
// Rendering
// ----------------------------------------------------------------------

/// Render `/proc/loadavg`: `l1 l5 l15 running/total last_pid`.
pub fn render_loadavg(s: &HostSample, runnable: usize, nprocs: usize) -> String {
    format!("{:.2} {:.2} {:.2} {}/{} 3042\n", s.load1, s.load5, s.load15, runnable, nprocs.max(40))
}

/// Render the probe-relevant lines of `/proc/stat` (Linux 2.4 format):
/// the aggregate `cpu` jiffies line and the `disk_io` summary.
pub fn render_stat(s: &HostSample, uptime_secs: f64) -> String {
    let user = (s.busy_user * HZ) as u64;
    let system = (s.busy_system * HZ) as u64;
    let nice = 0u64;
    let idle = ((uptime_secs - s.busy_user - s.busy_system).max(0.0) * HZ) as u64;
    let allreq = s.disk_rreq + s.disk_wreq;
    format!(
        "cpu  {user} {nice} {system} {idle}\n\
         cpu0 {user} {nice} {system} {idle}\n\
         disk_io: (3,0):({allreq},{rreq},{rblk},{wreq},{wblk})\n",
        rreq = s.disk_rreq,
        rblk = s.disk_rblocks,
        wreq = s.disk_wreq,
        wblk = s.disk_wblocks,
    )
}

/// Render `/proc/meminfo` (2.4 format with the `Mem:` byte-count header
/// Table 4.1 quotes: total used free shared buffers cached).
pub fn render_meminfo(s: &HostSample) -> String {
    let used = s.mem_total - s.mem_free;
    format!(
        "        total:    used:    free:  shared: buffers:  cached:\n\
         Mem:  {total} {used} {free} 0 {buffers} {cached}\n\
         Swap: 0 0 0\n\
         MemTotal:      {total_kb} kB\n\
         MemFree:       {free_kb} kB\n",
        total = s.mem_total,
        used = used,
        free = s.mem_free,
        buffers = s.mem_buffers,
        cached = s.mem_cached,
        total_kb = s.mem_total / 1024,
        free_kb = s.mem_free / 1024,
    )
}

/// Render `/proc/net/dev` for the loopback and primary interfaces.
pub fn render_net_dev(s: &HostSample, iface: &str) -> String {
    format!(
        "Inter-|   Receive                                                |  Transmit\n\
         face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n\
         \x20   lo:       0       0    0    0    0     0          0         0        0       0    0    0    0     0       0          0\n\
         \x20 {iface}: {rb} {rp}    0    0    0     0          0         0 {tb} {tp}    0    0    0     0       0          0\n",
        rb = s.net_rbytes,
        rp = s.net_rpackets,
        tb = s.net_tbytes,
        tp = s.net_tpackets,
    )
}

// ----------------------------------------------------------------------
// Parsing (what the probe does)
// ----------------------------------------------------------------------

/// Parse `/proc/loadavg` into the three averages.
pub fn parse_loadavg(text: &str) -> Option<(f64, f64, f64)> {
    let mut it = text.split_ascii_whitespace();
    let l1 = it.next()?.parse().ok()?;
    let l5 = it.next()?.parse().ok()?;
    let l15 = it.next()?.parse().ok()?;
    Some((l1, l5, l15))
}

/// CPU jiffies from the aggregate `cpu` line of `/proc/stat`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuJiffies {
    pub user: u64,
    pub nice: u64,
    pub system: u64,
    pub idle: u64,
}

impl CpuJiffies {
    pub fn total(&self) -> u64 {
        self.user + self.nice + self.system + self.idle
    }

    /// Usage fractions between two cumulative readings.
    pub fn usage_since(&self, earlier: &CpuJiffies) -> (f64, f64, f64, f64) {
        let d = CpuJiffies {
            user: self.user.saturating_sub(earlier.user),
            nice: self.nice.saturating_sub(earlier.nice),
            system: self.system.saturating_sub(earlier.system),
            idle: self.idle.saturating_sub(earlier.idle),
        };
        let total = d.total().max(1) as f64;
        (
            d.user as f64 / total,
            d.nice as f64 / total,
            d.system as f64 / total,
            d.idle as f64 / total,
        )
    }
}

/// Parse the `cpu` line of `/proc/stat`.
pub fn parse_stat_cpu(text: &str) -> Option<CpuJiffies> {
    let line = text.lines().find(|l| l.starts_with("cpu "))?;
    let mut it = line.split_ascii_whitespace().skip(1);
    Some(CpuJiffies {
        user: it.next()?.parse().ok()?,
        nice: it.next()?.parse().ok()?,
        system: it.next()?.parse().ok()?,
        idle: it.next()?.parse().ok()?,
    })
}

/// Disk counters from the `disk_io` line of `/proc/stat` (2.4 format).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskCounters {
    pub allreq: u64,
    pub rreq: u64,
    pub rblocks: u64,
    pub wreq: u64,
    pub wblocks: u64,
}

/// Parse and sum every `(major,minor):(...)` tuple on the `disk_io` line.
pub fn parse_stat_disk(text: &str) -> Option<DiskCounters> {
    let line = text.lines().find(|l| l.starts_with("disk_io:"))?;
    let mut out = DiskCounters::default();
    for tuple in line.split_ascii_whitespace().skip(1) {
        let inner = tuple.split(":(").nth(1)?.trim_end_matches(')');
        let mut nums = inner.split(',').map(|n| n.parse::<u64>().ok());
        out.allreq += nums.next()??;
        out.rreq += nums.next()??;
        out.rblocks += nums.next()??;
        out.wreq += nums.next()??;
        out.wblocks += nums.next()??;
    }
    Some(out)
}

/// Memory figures from the `Mem:` byte-count line of `/proc/meminfo`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemInfo {
    pub total: u64,
    pub used: u64,
    pub free: u64,
    pub shared: u64,
    pub buffers: u64,
    pub cached: u64,
}

pub fn parse_meminfo(text: &str) -> Option<MemInfo> {
    parse_meminfo_classic(text).or_else(|| parse_meminfo_modern(text))
}

/// The 2.4-era byte-count `Mem:` summary line (Table 4.1 format).
fn parse_meminfo_classic(text: &str) -> Option<MemInfo> {
    let line = text.lines().find(|l| l.starts_with("Mem:"))?;
    let mut it = line.split_ascii_whitespace().skip(1);
    Some(MemInfo {
        total: it.next()?.parse().ok()?,
        used: it.next()?.parse().ok()?,
        free: it.next()?.parse().ok()?,
        shared: it.next()?.parse().ok()?,
        buffers: it.next()?.parse().ok()?,
        cached: it.next()?.parse().ok()?,
    })
}

/// The 2.6+ per-field `Name:  <n> kB` format — kernels dropped the `Mem:`
/// summary line, so the live probe reading a real `/proc/meminfo` lands
/// here. Requires `MemTotal` *and* `MemFree` (a lone `MemTotal:` line is
/// still rejected as garbage); `used` is derived, `shared` is gone.
fn parse_meminfo_modern(text: &str) -> Option<MemInfo> {
    let kb = |name: &str| -> Option<u64> {
        let line = text.lines().find(|l| l.starts_with(name))?;
        let n: u64 = line.split_ascii_whitespace().nth(1)?.parse().ok()?;
        Some(n * 1024)
    };
    let total = kb("MemTotal:")?;
    let free = kb("MemFree:")?;
    Some(MemInfo {
        total,
        used: total.saturating_sub(free),
        free,
        shared: 0,
        buffers: kb("Buffers:").unwrap_or(0),
        cached: kb("Cached:").unwrap_or(0),
    })
}

/// NIC counters of one interface from `/proc/net/dev`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetDevCounters {
    pub rbytes: u64,
    pub rpackets: u64,
    pub tbytes: u64,
    pub tpackets: u64,
}

pub fn parse_net_dev(text: &str, iface: &str) -> Option<NetDevCounters> {
    for line in text.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix(&format!("{iface}:")) else { continue };
        let cols: Vec<&str> = rest.split_ascii_whitespace().collect();
        // Receive: bytes packets errs drop fifo frame compressed multicast
        // Transmit: bytes packets ...
        if cols.len() < 10 {
            return None;
        }
        return Some(NetDevCounters {
            rbytes: cols[0].parse().ok()?,
            rpackets: cols[1].parse().ok()?,
            tbytes: cols[8].parse().ok()?,
            tpackets: cols[9].parse().ok()?,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HostSample {
        HostSample {
            load1: 0.25,
            load5: 0.5,
            load15: 0.75,
            busy_user: 12.34,
            busy_system: 0.56,
            mem_total: 262_213_632,
            mem_free: 141_127_680,
            mem_buffers: 18_284_544,
            mem_cached: 82_911_232,
            disk_rreq: 100,
            disk_rblocks: 800,
            disk_wreq: 50,
            disk_wblocks: 400,
            net_rbytes: 123_456,
            net_rpackets: 789,
            net_tbytes: 654_321,
            net_tpackets: 987,
        }
    }

    #[test]
    fn loadavg_roundtrip() {
        let text = render_loadavg(&sample(), 1, 52);
        let (l1, l5, l15) = parse_loadavg(&text).unwrap();
        assert_eq!((l1, l5, l15), (0.25, 0.5, 0.75));
    }

    #[test]
    fn stat_cpu_roundtrip_and_usage() {
        let text = render_stat(&sample(), 100.0);
        let j = parse_stat_cpu(&text).unwrap();
        assert_eq!(j.user, 1234);
        assert_eq!(j.system, 56);
        // Differentiating against zero gives the overall fractions.
        let (u, _n, sys, idle) = j.usage_since(&CpuJiffies::default());
        assert!(u > 0.12 && u < 0.13);
        assert!(sys < 0.01);
        assert!(idle > 0.85);
    }

    #[test]
    fn stat_disk_roundtrip() {
        let text = render_stat(&sample(), 100.0);
        let d = parse_stat_disk(&text).unwrap();
        assert_eq!(
            d,
            DiskCounters { allreq: 150, rreq: 100, rblocks: 800, wreq: 50, wblocks: 400 }
        );
    }

    #[test]
    fn meminfo_roundtrip_matches_table_4_1_format() {
        let text = render_meminfo(&sample());
        let m = parse_meminfo(&text).unwrap();
        assert_eq!(m.total, 262_213_632);
        assert_eq!(m.used, 262_213_632 - 141_127_680);
        assert_eq!(m.free, 141_127_680);
        assert_eq!(m.buffers, 18_284_544);
        assert_eq!(m.cached, 82_911_232);
    }

    #[test]
    fn meminfo_modern_kb_format_falls_back() {
        let text = "MemTotal:        256068 kB\nMemFree:         137820 kB\n\
                    Buffers:          17856 kB\nCached:           80968 kB\n\
                    SwapCached:           0 kB\n";
        let m = parse_meminfo(text).unwrap();
        assert_eq!(m.total, 256_068 * 1024);
        assert_eq!(m.free, 137_820 * 1024);
        assert_eq!(m.used, (256_068 - 137_820) * 1024);
        assert_eq!(m.buffers, 17_856 * 1024);
        assert_eq!(m.cached, 80_968 * 1024);
        assert_eq!(m.shared, 0);
        // Both MemTotal and MemFree are required; one alone is garbage.
        assert!(parse_meminfo("MemFree: 5 kB").is_none());
    }

    #[test]
    fn net_dev_roundtrip_skips_loopback() {
        let text = render_net_dev(&sample(), "eth0");
        let n = parse_net_dev(&text, "eth0").unwrap();
        assert_eq!(
            n,
            NetDevCounters { rbytes: 123_456, rpackets: 789, tbytes: 654_321, tpackets: 987 }
        );
        let lo = parse_net_dev(&text, "lo").unwrap();
        assert_eq!(lo, NetDevCounters::default());
        assert!(parse_net_dev(&text, "eth1").is_none());
    }

    #[test]
    fn parsers_reject_garbage() {
        assert!(parse_loadavg("").is_none());
        assert!(parse_stat_cpu("nothing here").is_none());
        assert!(parse_stat_disk("cpu 1 2 3 4").is_none());
        assert!(parse_meminfo("MemTotal: 1 kB").is_none());
        assert!(parse_net_dev("junk", "eth0").is_none());
    }

    #[test]
    fn usage_since_clamps_on_counter_regression() {
        let a = CpuJiffies { user: 100, nice: 0, system: 10, idle: 890 };
        let b = CpuJiffies { user: 50, nice: 0, system: 5, idle: 445 };
        // Reading an *older* snapshot as "later" must not panic.
        let (u, n, s, i) = b.usage_since(&a);
        assert_eq!((u, n, s, i), (0.0, 0.0, 0.0, 0.0));
    }
}
