//! Synthetic workloads: the load generators of the evaluation chapter.

use std::ops::Add;

/// Background IO activity rates contributed by a workload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoRates {
    pub rreq_ps: f64,
    pub rblocks_ps: f64,
    pub wreq_ps: f64,
    pub wblocks_ps: f64,
    /// Page-cache growth from file churn, bytes/second.
    pub cache_growth_ps: f64,
}

impl Add for IoRates {
    type Output = IoRates;
    fn add(self, o: IoRates) -> IoRates {
        IoRates {
            rreq_ps: self.rreq_ps + o.rreq_ps,
            rblocks_ps: self.rblocks_ps + o.rblocks_ps,
            wreq_ps: self.wreq_ps + o.wreq_ps,
            wblocks_ps: self.wblocks_ps + o.wblocks_ps,
            cache_growth_ps: self.cache_growth_ps + o.cache_growth_ps,
        }
    }
}

/// A resident workload: CPU demand, memory footprint, IO pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    pub name: String,
    /// Total madd-equivalents to execute; `INFINITY` = runs until killed.
    pub cpu_work: f64,
    /// Anonymous memory footprint in bytes.
    pub mem_bytes: u64,
    pub io: IoRates,
    /// One-shot page-cache fill at start (scratch files, checkpoints).
    pub initial_cache_bytes: u64,
}

impl Workload {
    /// The paper's `Super_PI` load generator (§5.3.1): "With given
    /// parameter 25, the Super_PI program will occupy 150 MBytes of memory
    /// and CPU usage will vary from 0% to 100%. The system load value will
    /// remain above 1."
    ///
    /// Table 4.1 shows where those 150 MB live: after the run, *cached*
    /// memory has grown from 82 MB to 231 MB while anonymous use stays
    /// around 26 MB — SuperPI's working set is cache-backed scratch files.
    /// The model follows: a modest anonymous footprint plus a large
    /// one-shot page-cache fill and steady scratch churn.
    pub fn super_pi(parameter: u32) -> Workload {
        // Scratch scales with the digits parameter; 25 → 150 MB.
        let scratch = (u64::from(parameter) * 6) << 20;
        Workload {
            name: format!("super_pi({parameter})"),
            cpu_work: f64::INFINITY,
            mem_bytes: scratch / 6, // anon: 25 MB at parameter 25
            io: IoRates {
                rreq_ps: 8.0,
                rblocks_ps: 64.0,
                wreq_ps: 20.0,
                wblocks_ps: 160.0,
                cache_growth_ps: 512.0 * 1024.0,
            },
            initial_cache_bytes: scratch,
        }
    }

    /// A pure CPU hog with the given memory footprint (ablations).
    pub fn cpu_hog(name: &str, mem_bytes: u64) -> Workload {
        Workload {
            name: name.to_owned(),
            cpu_work: f64::INFINITY,
            mem_bytes,
            io: IoRates::default(),
            initial_cache_bytes: 0,
        }
    }

    /// A disk-thrashing workload with minimal CPU (data-intensive server).
    pub fn disk_hog(name: &str) -> Workload {
        Workload {
            name: name.to_owned(),
            cpu_work: f64::INFINITY,
            mem_bytes: 8 << 20,
            io: IoRates {
                rreq_ps: 200.0,
                rblocks_ps: 3200.0,
                wreq_ps: 50.0,
                wblocks_ps: 800.0,
                cache_growth_ps: 4.0 * 1024.0 * 1024.0,
            },
            initial_cache_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn super_pi_25_occupies_150_mb_of_scratch() {
        let w = Workload::super_pi(25);
        assert_eq!(w.initial_cache_bytes, 150 << 20);
        assert_eq!(w.mem_bytes, 25 << 20);
        assert!(w.cpu_work.is_infinite());
    }

    #[test]
    fn io_rates_add_componentwise() {
        let a = IoRates {
            rreq_ps: 1.0,
            rblocks_ps: 2.0,
            wreq_ps: 3.0,
            wblocks_ps: 4.0,
            cache_growth_ps: 5.0,
        };
        let b = a + a;
        assert_eq!(b.rblocks_ps, 4.0);
        assert_eq!(b.cache_growth_ps, 10.0);
    }

    #[test]
    fn hog_presets_have_expected_profiles() {
        let c = Workload::cpu_hog("x", 1 << 20);
        assert_eq!(c.io, IoRates::default());
        let d = Workload::disk_hog("y");
        assert!(d.io.rblocks_ps > 1000.0);
    }
}
