//! Deterministic fleet topology generation (ROADMAP item 1).
//!
//! The thesis evaluates the wizard on the eleven machines of Table 5.1; a
//! production wizard selects among thousands. This module expands a seeded
//! [`TopologySpec`] — subnet groups, heterogeneous host classes, per-subnet
//! link profiles — into a [`Fleet`] of 10k+ simulated hosts with
//! deterministic names, addresses and baseline resource profiles.
//!
//! Two invariants the rest of the stack leans on:
//!
//! * **Determinism** — `spec.expand(seed)` is a pure function: the same
//!   `(spec, seed)` always yields byte-identical fleets (host order, IPs,
//!   sampled values), so fleet experiments stay reproducible at any
//!   `--jobs` width.
//! * **Class separation** — each [`HostClass`] samples its baseline
//!   metrics inside bands that never cross the requirement thresholds the
//!   `fleet.*` experiments use, so shape checks hold across the whole
//!   `--seeds` matrix rather than at one lucky seed.
//!
//! The hand-written testbed ([`crate::testbed`]) is *one named spec* here
//! ([`TopologySpec::testbed11`]): its eleven machines expand through the
//! same path as the generated fleets, with their Fig 5.1 segments becoming
//! ordinary subnets.

use smartsock_proto::{Ip, ServerStatusReport};
use smartsock_sim::rng::splitmix64;

use crate::cpu::CpuModel;
use crate::testbed;

/// A heterogeneous host class: hardware plus the band its baseline
/// metrics are sampled from. Bands are chosen so that class membership is
/// decidable from any sampled value (no band straddles the `fleet.*`
/// requirement thresholds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostClass {
    pub name: &'static str,
    pub cpu: CpuModel,
    pub ram_mb: u64,
    /// `cpu_idle` sampling band (fraction, lo..hi).
    pub idle: (f64, f64),
    /// 1-minute load-average sampling band.
    pub load: (f64, f64),
    /// Free-memory band as a fraction of RAM.
    pub mem_free: (f64, f64),
}

impl HostClass {
    /// Mostly-idle P4 2.4 GHz compute node: qualifies for
    /// `host_cpu_free > 0.9` at every seed.
    pub const COMPUTE: HostClass = HostClass {
        name: "compute",
        cpu: CpuModel::P4_2400,
        ram_mb: 512,
        idle: (0.92, 0.99),
        load: (0.02, 0.30),
        mem_free: (0.50, 0.85),
    };
    /// Mid-range P4 1.7 GHz general-purpose node, also mostly idle.
    pub const GENERAL: HostClass = HostClass {
        name: "general",
        cpu: CpuModel::P4_1700,
        ram_mb: 256,
        idle: (0.92, 0.99),
        load: (0.05, 0.40),
        mem_free: (0.40, 0.80),
    };
    /// Saturated node: never qualifies for `host_cpu_free > 0.9`.
    pub const BUSY: HostClass = HostClass {
        name: "busy",
        cpu: CpuModel::P4_1700,
        ram_mb: 256,
        idle: (0.05, 0.30),
        load: (2.0, 6.0),
        mem_free: (0.05, 0.20),
    };
    /// Old P3 866 MHz box with little memory, moderately loaded.
    pub const LEGACY: HostClass = HostClass {
        name: "legacy",
        cpu: CpuModel::P3_866,
        ram_mb: 128,
        idle: (0.55, 0.80),
        load: (0.5, 1.5),
        mem_free: (0.20, 0.45),
    };
}

/// The link feeding a subnet — consumed by deployment glue and by the
/// fleet experiments' modelled `netdb` records.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkProfile {
    /// Switched 100 Mbps LAN (the testbed's private segments).
    Lan100,
    /// Gigabit LAN.
    Lan1G,
    /// The campus network of Fig 5.1 (shared 100 Mbps, more delay).
    Campus,
    /// A WAN hop with explicit delay/bandwidth.
    Wan { delay_ms: f64, bw_mbps: f64 },
}

impl LinkProfile {
    pub fn bw_mbps(self) -> f64 {
        match self {
            LinkProfile::Lan100 => 100.0,
            LinkProfile::Lan1G => 1000.0,
            LinkProfile::Campus => 100.0,
            LinkProfile::Wan { bw_mbps, .. } => bw_mbps,
        }
    }

    pub fn delay_ms(self) -> f64 {
        match self {
            LinkProfile::Lan100 => 0.2,
            LinkProfile::Lan1G => 0.05,
            LinkProfile::Campus => 0.5,
            LinkProfile::Wan { delay_ms, .. } => delay_ms,
        }
    }
}

/// One group of identically-shaped subnets in a spec.
#[derive(Clone, Debug)]
pub struct SubnetGroup {
    /// Host-name prefix (`"c"` → hosts `c0-1`, `c0-2`, …).
    pub label: &'static str,
    /// Total hosts in the group; filled `hosts_per_subnet` at a time, the
    /// last subnet taking the remainder.
    pub total_hosts: u32,
    /// Hosts per /24 subnet (1..=250).
    pub hosts_per_subnet: u16,
    /// Weighted class mix; per-host classes are drawn deterministically
    /// from `(seed, subnet, host)`.
    pub classes: Vec<(HostClass, u32)>,
    /// Link profile shared by every subnet in the group.
    pub link: LinkProfile,
}

/// A seeded topology: explicit machines (the hand-written testbed) plus
/// generated subnet groups. `expand(seed)` turns it into a [`Fleet`].
#[derive(Clone, Debug)]
pub struct TopologySpec {
    pub name: &'static str,
    /// Hand-specified machines (Table 5.1 path); each lands in the subnet
    /// its address implies.
    pub explicit: Vec<testbed::MachineSpec>,
    pub groups: Vec<SubnetGroup>,
}

/// One expanded host.
#[derive(Clone, Debug)]
pub struct FleetHost {
    pub name: String,
    pub ip: Ip,
    /// Index into [`Fleet::subnets`].
    pub subnet: usize,
    pub class: HostClass,
    /// Sampled baseline metrics (within the class bands).
    pub cpu_idle: f64,
    pub load1: f64,
    pub mem_free_bytes: u64,
}

impl FleetHost {
    /// Render this host's baseline as the probe's status report — the
    /// fleet experiments feed these straight into the status DB without
    /// simulating 10k real probe daemons.
    pub fn status_report(&self) -> ServerStatusReport {
        let mut r = ServerStatusReport::empty(self.name.as_str(), self.ip);
        r.load1 = self.load1;
        r.load5 = self.load1 * 0.9;
        r.load15 = self.load1 * 0.8;
        r.cpu_idle = self.cpu_idle;
        r.cpu_user = (1.0 - self.cpu_idle) * 0.8;
        r.cpu_system = (1.0 - self.cpu_idle) * 0.2;
        r.bogomips = self.class.cpu.bogomips;
        r.mem_total = self.class.ram_mb << 20;
        r.mem_free = self.mem_free_bytes;
        r.mem_used = (self.class.ram_mb << 20).saturating_sub(self.mem_free_bytes);
        r.iface = "eth0".to_owned();
        r
    }
}

/// One expanded /24 subnet.
#[derive(Clone, Debug)]
pub struct SubnetInfo {
    /// The first three address octets (`a.b.c.0/24`).
    pub prefix: [u8; 3],
    pub label: String,
    pub link: LinkProfile,
    /// The subnet's network-monitor address (`.254` by convention).
    pub monitor: Ip,
}

/// A fully expanded topology: hosts in address order within generation
/// order, subnets in generation order.
#[derive(Clone, Debug)]
pub struct Fleet {
    pub name: &'static str,
    pub hosts: Vec<FleetHost>,
    pub subnets: Vec<SubnetInfo>,
}

impl Fleet {
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }
}

/// Unit-interval sample from a `(seed, stream, a, b)` tuple — splitmix64
/// avalanche, no RNG state to thread.
fn unit(seed: u64, stream: u64, a: u64, b: u64) -> f64 {
    let x = splitmix64(seed ^ splitmix64(stream.wrapping_add(a << 20).wrapping_add(b)));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn sample(band: (f64, f64), u: f64) -> f64 {
    band.0 + (band.1 - band.0) * u
}

impl TopologySpec {
    /// The eleven hand-written machines of Table 5.1 as one named spec.
    pub fn testbed11() -> TopologySpec {
        TopologySpec { name: "testbed11", explicit: testbed::machine_specs(), groups: Vec::new() }
    }

    /// A generated fleet of exactly `total` hosts: half mostly-idle
    /// compute/general subnets on gigabit links, half busy/legacy subnets
    /// on 100 Mbps links — heterogeneous enough that subnet pruning has
    /// something to prune.
    pub fn fleet(total: u32) -> TopologySpec {
        let compute = total - total / 2;
        let busy = total / 2;
        let mut groups = vec![SubnetGroup {
            label: "c",
            total_hosts: compute,
            hosts_per_subnet: 50,
            classes: vec![(HostClass::COMPUTE, 3), (HostClass::GENERAL, 1)],
            link: LinkProfile::Lan1G,
        }];
        if busy > 0 {
            groups.push(SubnetGroup {
                label: "b",
                total_hosts: busy,
                hosts_per_subnet: 50,
                classes: vec![(HostClass::BUSY, 3), (HostClass::LEGACY, 1)],
                link: LinkProfile::Lan100,
            });
        }
        TopologySpec { name: "fleet", explicit: Vec::new(), groups }
    }

    /// Look up a named spec: `testbed11`, `fleet100`, `fleet1k`,
    /// `fleet10k`.
    pub fn named(name: &str) -> Option<TopologySpec> {
        Some(match name {
            "testbed11" => TopologySpec::testbed11(),
            "fleet100" => TopologySpec::fleet(100),
            "fleet1k" => TopologySpec::fleet(1_000),
            "fleet10k" => TopologySpec::fleet(10_000),
            _ => return None,
        })
    }

    /// Expand into a concrete fleet. Pure in `(self, seed)`.
    ///
    /// Generated subnets take `10.(1 + k/200).(k % 200).0/24` for running
    /// subnet index `k`, hosts `.1 ..= .hosts`; explicit machines keep
    /// their Table 5.1 addresses and are grouped into subnets by /24
    /// prefix.
    pub fn expand(&self, seed: u64) -> Fleet {
        let mut hosts = Vec::new();
        let mut subnets: Vec<SubnetInfo> = Vec::new();

        // Explicit machines first: one subnet per distinct /24 prefix, in
        // first-appearance order.
        for m in &self.explicit {
            let o = m.ip.octets();
            let prefix = [o[0], o[1], o[2]];
            let subnet = match subnets.iter().position(|s| s.prefix == prefix) {
                Some(i) => i,
                None => {
                    subnets.push(SubnetInfo {
                        prefix,
                        label: if m.segment == 0 {
                            "campus".to_owned()
                        } else {
                            format!("segment{}", m.segment)
                        },
                        link: if m.segment == 0 {
                            LinkProfile::Campus
                        } else {
                            LinkProfile::Lan100
                        },
                        monitor: Ip::new(prefix[0], prefix[1], prefix[2], 254),
                    });
                    subnets.len() - 1
                }
            };
            // Hand-written machines carry no sampled baseline: they start
            // idle, exactly as `Host::new` boots them in the simulator.
            hosts.push(FleetHost {
                name: m.name.to_owned(),
                ip: m.ip,
                subnet,
                class: HostClass {
                    name: "testbed",
                    cpu: m.cpu,
                    ram_mb: m.ram_mb,
                    idle: (1.0, 1.0),
                    load: (0.0, 0.0),
                    mem_free: (0.9, 0.9),
                },
                cpu_idle: 1.0,
                load1: 0.0,
                mem_free_bytes: (m.ram_mb << 20) * 9 / 10,
            });
        }

        // Generated groups: subnets are numbered across groups so their
        // /24 prefixes never collide.
        let mut k: u32 = 0; // running generated-subnet index
        for (gi, g) in self.groups.iter().enumerate() {
            assert!(
                (1..=250).contains(&g.hosts_per_subnet),
                "hosts_per_subnet must be 1..=250, got {}",
                g.hosts_per_subnet
            );
            let weight_total: u32 = g.classes.iter().map(|(_, w)| w).sum();
            assert!(weight_total > 0, "group {:?} has no class weights", g.label);
            let mut remaining = g.total_hosts;
            while remaining > 0 {
                let here = remaining.min(u32::from(g.hosts_per_subnet));
                let prefix = [10, (1 + k / 200) as u8, (k % 200) as u8];
                assert!(k / 200 < 250, "too many generated subnets");
                let subnet = subnets.len();
                subnets.push(SubnetInfo {
                    prefix,
                    label: format!("{}{k}", g.label),
                    link: g.link,
                    monitor: Ip::new(prefix[0], prefix[1], prefix[2], 254),
                });
                for h in 0..here {
                    // Class draw: weighted, keyed by (seed, group, subnet,
                    // host) so every host is independent of every other.
                    let stream = (gi as u64) << 40 | u64::from(k);
                    let pick =
                        (unit(seed, stream, u64::from(h), 0) * f64::from(weight_total)) as u32;
                    let mut acc = 0u32;
                    let mut class = g.classes[0].0;
                    for (c, w) in &g.classes {
                        acc += w;
                        if pick < acc {
                            class = *c;
                            break;
                        }
                    }
                    let idle = sample(class.idle, unit(seed, stream, u64::from(h), 1));
                    let load1 = sample(class.load, unit(seed, stream, u64::from(h), 2));
                    let free = sample(class.mem_free, unit(seed, stream, u64::from(h), 3));
                    hosts.push(FleetHost {
                        name: format!("{}{k}-{}", g.label, h + 1),
                        ip: Ip::new(prefix[0], prefix[1], prefix[2], (h + 1) as u8),
                        subnet,
                        class,
                        cpu_idle: idle,
                        load1,
                        mem_free_bytes: ((class.ram_mb << 20) as f64 * free) as u64,
                    });
                }
                remaining -= here;
                k += 1;
            }
        }
        Fleet { name: self.name, hosts, subnets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn testbed11_expands_to_the_eleven_table_5_1_machines() {
        let fleet = TopologySpec::testbed11().expand(1);
        assert_eq!(fleet.len(), 11);
        let specs = testbed::machine_specs();
        for (h, m) in fleet.hosts.iter().zip(&specs) {
            assert_eq!(h.name, m.name);
            assert_eq!(h.ip, m.ip);
            assert_eq!(h.class.cpu, m.cpu);
        }
        // Fig 5.1: campus plus five private segments — six subnets.
        assert_eq!(fleet.subnets.len(), 6);
        assert_eq!(fleet.subnets[0].label, "campus");
        assert_eq!(fleet.subnets[0].link, LinkProfile::Campus);
    }

    #[test]
    fn fleet_sizes_are_exact_and_subnetted() {
        for (total, want_subnets) in [(100u32, 2usize), (1_000, 20), (10_000, 200)] {
            let fleet = TopologySpec::fleet(total).expand(7);
            assert_eq!(fleet.len(), total as usize, "fleet({total})");
            assert_eq!(fleet.subnets.len(), want_subnets, "fleet({total}) subnets");
        }
    }

    #[test]
    fn addresses_and_prefixes_are_unique() {
        let fleet = TopologySpec::fleet(1_000).expand(42);
        let ips: BTreeSet<Ip> = fleet.hosts.iter().map(|h| h.ip).collect();
        assert_eq!(ips.len(), fleet.len());
        let prefixes: BTreeSet<[u8; 3]> = fleet.subnets.iter().map(|s| s.prefix).collect();
        assert_eq!(prefixes.len(), fleet.subnets.len());
        for h in &fleet.hosts {
            let o = h.ip.octets();
            assert_eq!([o[0], o[1], o[2]], fleet.subnets[h.subnet].prefix);
        }
    }

    #[test]
    fn expansion_is_deterministic_and_seed_sensitive() {
        let a = TopologySpec::fleet(200).expand(5);
        let b = TopologySpec::fleet(200).expand(5);
        for (x, y) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.cpu_idle, y.cpu_idle);
            assert_eq!(x.load1, y.load1);
            assert_eq!(x.mem_free_bytes, y.mem_free_bytes);
        }
        let c = TopologySpec::fleet(200).expand(6);
        assert!(
            a.hosts.iter().zip(&c.hosts).any(|(x, y)| x.cpu_idle != y.cpu_idle),
            "different seeds must sample different baselines"
        );
    }

    #[test]
    fn sampled_values_stay_inside_class_bands() {
        let fleet = TopologySpec::fleet(500).expand(99);
        for h in &fleet.hosts {
            let c = h.class;
            assert!(h.cpu_idle >= c.idle.0 && h.cpu_idle <= c.idle.1, "{}", h.name);
            assert!(h.load1 >= c.load.0 && h.load1 <= c.load.1, "{}", h.name);
            let free = h.mem_free_bytes as f64 / (c.ram_mb << 20) as f64;
            assert!(free >= c.mem_free.0 - 1e-9 && free <= c.mem_free.1 + 1e-9, "{}", h.name);
        }
    }

    #[test]
    fn class_bands_never_cross_the_fleet_requirement_threshold() {
        // The fleet experiments select on `host_cpu_free > 0.9`: compute
        // and general hosts always qualify, busy and legacy never do.
        for c in [HostClass::COMPUTE, HostClass::GENERAL] {
            assert!(c.idle.0 > 0.9, "{} must always qualify", c.name);
        }
        for c in [HostClass::BUSY, HostClass::LEGACY] {
            assert!(c.idle.1 < 0.9, "{} must never qualify", c.name);
        }
    }

    #[test]
    fn status_reports_carry_the_sampled_baseline() {
        let fleet = TopologySpec::fleet(100).expand(3);
        let h = &fleet.hosts[0];
        let r = h.status_report();
        assert_eq!(r.ip, h.ip);
        assert_eq!(r.cpu_idle, h.cpu_idle);
        assert_eq!(r.mem_total, h.class.ram_mb << 20);
        assert_eq!(r.mem_free, h.mem_free_bytes);
        assert!(r.bogomips > 0.0);
    }

    #[test]
    fn named_specs_resolve() {
        for (name, size) in [("testbed11", 11), ("fleet100", 100), ("fleet1k", 1_000)] {
            let spec = TopologySpec::named(name).unwrap();
            assert_eq!(spec.expand(1).len(), size);
        }
        assert!(TopologySpec::named("fleet1m").is_none());
    }
}
