//! The eleven machines of the thesis testbed (Table 5.1, Fig 5.1).
//!
//! Segment layout follows Fig 5.1: the five private /24 networks
//! `192.168.1.0/24 … 192.168.5.0/24` live in the Communication and
//! Internet Research lab, `sagit` sits in the School of Computing network
//! `137.132.81.0/24` behind the gateway `dalmatian`.
//!
//! This table is the *data*; the expansion path lives in
//! [`crate::topology`], where [`crate::topology::TopologySpec::testbed11`]
//! wraps these machines as one named spec alongside the generated
//! `fleet*` topologies.

use smartsock_proto::Ip;

use crate::cpu::CpuModel;
use crate::host::HostConfig;

/// Static description of one testbed machine.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    pub name: &'static str,
    pub cpu: CpuModel,
    pub ram_mb: u64,
    pub ip: Ip,
    /// Private segment index 1..=5, or 0 for the campus network.
    pub segment: u8,
}

impl MachineSpec {
    pub fn host_config(&self) -> HostConfig {
        HostConfig::new(self.name, self.ip, self.cpu, self.ram_mb)
    }
}

/// All eleven machines of Table 5.1.
pub fn machine_specs() -> Vec<MachineSpec> {
    use CpuModel as C;
    let m = |name, cpu, ram_mb, segment, host: u8| MachineSpec {
        name,
        cpu,
        ram_mb,
        ip: if segment == 0 {
            Ip::new(137, 132, 81, host)
        } else {
            Ip::new(192, 168, segment, host)
        },
        segment,
    };
    vec![
        m("sagit", C::P3_866, 128, 0, 10),
        m("dalmatian", C::P4_2400, 512, 1, 10),
        m("mimas", C::P4_1700, 192, 1, 11),
        m("telesto", C::P4_1600, 128, 2, 10),
        m("lhost", C::P3_866, 128, 2, 11),
        m("helene", C::P4_1700, 256, 3, 10),
        m("phoebe", C::P4_1700, 256, 3, 11),
        m("calypso", C::P4_1700, 256, 4, 10),
        m("dione", C::P4_2400, 512, 4, 11),
        m("titan-x", C::P4_1700, 256, 5, 10),
        m("pandora-x", C::P4_1800, 256, 5, 11),
    ]
}

/// Look up one machine by name.
pub fn spec(name: &str) -> MachineSpec {
    machine_specs()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown testbed machine {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_eleven_machines() {
        assert_eq!(machine_specs().len(), 11);
    }

    #[test]
    fn table_5_1_configs() {
        assert_eq!(spec("sagit").cpu, CpuModel::P3_866);
        assert_eq!(spec("sagit").ram_mb, 128);
        assert_eq!(spec("dalmatian").cpu, CpuModel::P4_2400);
        assert_eq!(spec("dalmatian").ram_mb, 512);
        assert_eq!(spec("mimas").ram_mb, 192);
        assert_eq!(spec("telesto").cpu, CpuModel::P4_1600);
        assert_eq!(spec("pandora-x").cpu, CpuModel::P4_1800);
        assert_eq!(spec("dione").cpu, CpuModel::P4_2400);
    }

    #[test]
    fn names_and_ips_are_unique() {
        let specs = machine_specs();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name, b.name);
                assert_ne!(a.ip, b.ip);
            }
        }
    }

    #[test]
    fn sagit_is_on_the_campus_network() {
        let s = spec("sagit");
        assert_eq!(s.segment, 0);
        assert_eq!(s.ip.octets()[0], 137);
    }

    #[test]
    #[should_panic(expected = "unknown testbed machine")]
    fn unknown_machine_panics() {
        spec("enceladus");
    }
}
