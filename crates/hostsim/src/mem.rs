//! Linux-convention memory accounting with cache reclaim.
//!
//! `/proc/meminfo` reports `total`, `used = total - free`, `free`,
//! `buffers` and `cached`. Anonymous allocations draw from `free`; when
//! `free` runs low the kernel reclaims page-cache (`cached`, then
//! `buffers`). File activity grows `cached`. Table 4.1 of the paper shows
//! the resulting dynamics around a SuperPI run; `workload::super_pi`
//! reproduces it on this model.

/// Memory state of one host, in bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Memory {
    pub total: u64,
    pub free: u64,
    pub buffers: u64,
    pub cached: u64,
    /// Anonymous (non-reclaimable) bytes: kernel + resident processes.
    pub anon: u64,
    /// Floor the kernel keeps free under pressure.
    pub min_free: u64,
}

impl Memory {
    /// A fresh host: ~46% of RAM anon-resident for OS + daemons on the
    /// thesis machines, some warm buffers/cache (the Table 4.1 "Mem1" row
    /// has 121 MB used of 256 MB with 18 MB buffers + 82 MB cached).
    pub fn fresh(total: u64) -> Memory {
        let anon = total / 13; // ~20 MB on a 256 MB box: kernel + daemons
        let buffers = total * 7 / 100;
        let cached = total * 31 / 100;
        Memory {
            total,
            free: total - anon - buffers - cached,
            buffers,
            cached,
            anon,
            min_free: (total / 64).max(2 << 20),
        }
    }

    /// Linux `used` = total - free.
    pub fn used(&self) -> u64 {
        self.total - self.free
    }

    /// Allocate `bytes` anonymously. Reclaims cached then buffers when
    /// `free` would fall under the floor; returns `false` (allocation
    /// failure / OOM) if even reclaim cannot satisfy it.
    pub fn alloc(&mut self, bytes: u64) -> bool {
        let mut need = bytes;
        let avail_free = self.free.saturating_sub(self.min_free);
        let from_free = need.min(avail_free);
        need -= from_free;
        let from_cached = need.min(self.cached.saturating_sub(1 << 20));
        need -= from_cached;
        let from_buffers = need.min(self.buffers.saturating_sub(512 << 10));
        need -= from_buffers;
        if need > 0 {
            return false;
        }
        self.free -= from_free;
        self.cached -= from_cached;
        self.buffers -= from_buffers;
        self.anon += bytes;
        // Reclaimed pages back an anon allocation: free stays put, the
        // reclaim victims shrink instead.
        debug_assert!(self.consistent());
        true
    }

    /// Release `bytes` of anonymous memory back to `free`.
    pub fn release(&mut self, bytes: u64) {
        let b = bytes.min(self.anon);
        self.anon -= b;
        self.free += b;
        debug_assert!(self.consistent());
    }

    /// File-cache growth from IO activity (evicting nothing while `free`
    /// is above the floor; otherwise bounded by what can be freed).
    pub fn grow_cache(&mut self, bytes: u64) {
        let grow = bytes.min(self.free.saturating_sub(self.min_free));
        self.free -= grow;
        self.cached += grow;
        debug_assert!(self.consistent());
    }

    fn consistent(&self) -> bool {
        self.anon + self.free + self.buffers + self.cached == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn fresh_accounting_is_consistent() {
        let m = Memory::fresh(256 * MB);
        assert!(m.consistent());
        assert_eq!(m.used(), m.total - m.free);
        assert!(m.free > 100 * MB, "fresh box should have lots free");
    }

    #[test]
    fn small_allocations_come_from_free() {
        let mut m = Memory::fresh(256 * MB);
        let (free0, cached0) = (m.free, m.cached);
        assert!(m.alloc(10 * MB));
        assert_eq!(m.free, free0 - 10 * MB);
        assert_eq!(m.cached, cached0);
        assert_eq!(m.used(), m.total - m.free);
    }

    #[test]
    fn big_allocations_reclaim_cache_like_table_4_1() {
        // SuperPI-scale pressure on a 256 MB machine: free collapses to the
        // floor and cached/buffers are reclaimed, but the alloc succeeds.
        let mut m = Memory::fresh(256 * MB);
        assert!(m.alloc(180 * MB));
        assert!(m.free <= m.min_free + MB, "free should be near the floor: {}", m.free);
        assert!(m.cached < 82 * MB, "cache must have been reclaimed");
    }

    #[test]
    fn impossible_allocations_fail_without_corrupting_state() {
        let mut m = Memory::fresh(256 * MB);
        let before = m;
        assert!(!m.alloc(1024 * MB));
        assert_eq!(m, before);
    }

    #[test]
    fn release_returns_memory_to_free() {
        let mut m = Memory::fresh(256 * MB);
        let free0 = m.free;
        assert!(m.alloc(50 * MB));
        m.release(50 * MB);
        assert_eq!(m.free, free0);
    }

    #[test]
    fn cache_grows_with_file_io_until_the_floor() {
        let mut m = Memory::fresh(256 * MB);
        let cached0 = m.cached;
        m.grow_cache(40 * MB);
        assert_eq!(m.cached, cached0 + 40 * MB);
        // Saturate: cache growth stops at the free floor.
        m.grow_cache(10_000 * MB);
        assert!(m.free >= m.min_free);
    }
}
