//! # smartsock-hostsim
//!
//! Simulated Linux servers: the substrate behind the paper's server probes.
//!
//! The probe of §3.2.1 reads five `/proc` entries (`/proc/loadavg`,
//! `/proc/stat` twice, `/proc/meminfo`, `/proc/net/dev` — Table 3.1). This
//! crate provides hosts whose CPU scheduler, memory accounting, disk and
//! NIC counters evolve under synthetic workloads and can be *rendered as
//! the same text files*, so the probe exercises the identical parse path a
//! real deployment would.
//!
//! Modelled subsystems:
//!
//! * **CPU** — a fair-share scheduler over compute tasks; each machine has
//!   a per-program compute rate calibrated against Fig 5.2's matrix
//!   benchmark (where the P3 866 MHz and P4 2.4 GHz machines beat the
//!   P4 1.6–1.8 GHz ones — the thesis attributes this to the program/
//!   compiler combination, so the rate is a property of the pair, not of
//!   clock speed alone) plus the kernel's BogoMIPS figure (Table 5.1);
//! * **load averages** — exact exponential moving averages of the run
//!   queue length with 1/5/15-minute time constants, updated analytically
//!   at every queue change;
//! * **memory** — Linux-convention `total/used/free/buffers/cached`
//!   accounting with reclaim (allocations evict cache before failing),
//!   reproducing the SuperPI before/after snapshot of Table 4.1;
//! * **disk & NIC counters** — integrators fed by workloads and by the
//!   deployment glue;
//! * **workloads** — `SuperPI` (the memory/CPU hog of §5.3.1), plus
//!   parameterisable CPU/IO hogs for ablations.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod cpu;
pub mod host;
pub mod load;
pub mod mem;
pub mod procfs;
pub mod testbed;
pub mod topology;
pub mod workload;

pub use cpu::CpuModel;
pub use host::{Host, HostConfig, SpawnError};
pub use testbed::{machine_specs, MachineSpec};
pub use topology::{
    Fleet, FleetHost, HostClass, LinkProfile, SubnetGroup, SubnetInfo, TopologySpec,
};
pub use workload::Workload;
