//! Linux-style load averages.
//!
//! The kernel keeps exponentially damped moving averages of the run-queue
//! length with time constants of 1, 5 and 15 minutes. Between run-queue
//! changes the queue length is constant, so the EMA can be folded
//! analytically at each change:
//!
//! ```text
//! load(t+dt) = n + (load(t) - n) * exp(-dt/tau)
//! ```
//!
//! which is exact (no 5-second sampling grid needed) and cheap.

use smartsock_sim::SimTime;

const TAU_1: f64 = 60.0;
const TAU_5: f64 = 300.0;
const TAU_15: f64 = 900.0;

/// The three load averages plus the bookkeeping to update them lazily.
#[derive(Clone, Copy, Debug)]
pub struct LoadAvg {
    load1: f64,
    load5: f64,
    load15: f64,
    /// Run-queue length since `since`.
    queue_len: f64,
    since: SimTime,
}

impl Default for LoadAvg {
    fn default() -> Self {
        LoadAvg { load1: 0.0, load5: 0.0, load15: 0.0, queue_len: 0.0, since: SimTime::ZERO }
    }
}

impl LoadAvg {
    /// Fold the interval `[self.since, now]` (constant queue) into the
    /// averages and record a new queue length.
    pub fn set_queue_len(&mut self, now: SimTime, n: usize) {
        self.fold(now);
        self.queue_len = n as f64;
    }

    /// Read the averages as of `now`.
    pub fn sample(&self, now: SimTime) -> (f64, f64, f64) {
        let mut copy = *self;
        copy.fold(now);
        (copy.load1, copy.load5, copy.load15)
    }

    fn fold(&mut self, now: SimTime) {
        let dt = now.since(self.since).as_secs_f64();
        if dt > 0.0 {
            let n = self.queue_len;
            self.load1 = n + (self.load1 - n) * (-dt / TAU_1).exp();
            self.load5 = n + (self.load5 - n) * (-dt / TAU_5).exp();
            self.load15 = n + (self.load15 - n) * (-dt / TAU_15).exp();
        }
        self.since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_machine_stays_at_zero() {
        let l = LoadAvg::default();
        let (a, b, c) = l.sample(SimTime::from_secs(3600));
        assert_eq!((a, b, c), (0.0, 0.0, 0.0));
    }

    #[test]
    fn sustained_load_converges_to_queue_length() {
        let mut l = LoadAvg::default();
        l.set_queue_len(SimTime::ZERO, 2);
        let (l1, l5, l15) = l.sample(SimTime::from_secs(3600));
        assert!((l1 - 2.0).abs() < 1e-6);
        assert!((l5 - 2.0).abs() < 1e-3);
        assert!((l15 - 2.0).abs() < 0.05);
    }

    #[test]
    fn one_minute_average_reacts_fastest() {
        let mut l = LoadAvg::default();
        l.set_queue_len(SimTime::ZERO, 1);
        let (l1, l5, l15) = l.sample(SimTime::from_secs(60));
        // After one time constant, load1 = 1 - 1/e ≈ 0.632.
        assert!((l1 - 0.632).abs() < 0.01, "load1 = {l1}");
        assert!(l5 < l1 && l15 < l5);
    }

    #[test]
    fn load_decays_after_the_queue_empties() {
        let mut l = LoadAvg::default();
        l.set_queue_len(SimTime::ZERO, 1);
        l.set_queue_len(SimTime::from_secs(3600), 0);
        let (l1, ..) = l.sample(SimTime::from_secs(3600 + 60));
        assert!((l1 - 1.0 / std::f64::consts::E).abs() < 0.01, "load1 = {l1}");
        let (l1, ..) = l.sample(SimTime::from_secs(3600 + 1200));
        assert!(l1 < 0.01);
    }

    #[test]
    fn piecewise_folding_matches_a_single_fold() {
        // Folding at intermediate points with unchanged queue must not
        // change the result.
        let mut a = LoadAvg::default();
        a.set_queue_len(SimTime::ZERO, 3);
        let direct = a.sample(SimTime::from_secs(500));

        let mut b = LoadAvg::default();
        b.set_queue_len(SimTime::ZERO, 3);
        for t in (100..=400).step_by(100) {
            b.set_queue_len(SimTime::from_secs(t), 3);
        }
        let stepped = b.sample(SimTime::from_secs(500));
        assert!((direct.0 - stepped.0).abs() < 1e-9);
        assert!((direct.2 - stepped.2).abs() < 1e-9);
    }
}
