//! # smartsock-wire
//!
//! Transmitter and receiver (paper §3.5): the components that move the
//! three status databases from each monitor machine to the wizard machine.
//!
//! The transmitter snapshots `sysdb`/`netdb`/`secdb` and ships them as
//! binary `[type, size, data]` frames over TCP (§3.5.1 — binary because a
//! monitor may track many servers and ASCII conversion would waste cycles;
//! the record layout is pinned little-endian, see `smartsock-proto`). The
//! receiver reassembles the frames and overwrites its local copies, so the
//! wizard reads them "as if they were generated locally" (§3.5.2).
//!
//! Two operating modes (§3.5.1):
//!
//! * **Centralized** — the transmitter pushes every `interval`; the wizard
//!   always has fresh data and replies instantly. Right for small, dense
//!   deployments.
//! * **Distributed** — the transmitter listens passively on port 1110 and
//!   sends a snapshot only when the wizard's receiver requests one,
//!   avoiding steady background traffic across a sparse wide-area system.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use bytes::BytesMut;

use smartsock_monitor::{SharedNetDb, SharedSecDb, SharedSysDb};
use smartsock_net::{Network, Payload};
use smartsock_proto::consts::{ports, timing};
use smartsock_proto::{Endpoint, Frame, Ip};
use smartsock_sim::{Scheduler, SimDuration};

/// Transmitter/receiver operating mode (§3.5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Push snapshots on a timer.
    Centralized,
    /// Wait for pull requests from the wizard machine.
    Distributed,
}

/// The pull-request body sent by a receiver in distributed mode.
pub const PULL_REQUEST: &[u8] = b"SSPULL1";

/// The transmitter daemon on a monitor machine.
#[derive(Clone)]
pub struct Transmitter {
    ip: Ip,
    net: Network,
    mode: Mode,
    receiver: Endpoint,
    interval: SimDuration,
    sysdb: SharedSysDb,
    netdb: SharedNetDb,
    secdb: SharedSecDb,
}

impl Transmitter {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ip: Ip,
        net: Network,
        mode: Mode,
        receiver_ip: Ip,
        sysdb: SharedSysDb,
        netdb: SharedNetDb,
        secdb: SharedSecDb,
    ) -> Transmitter {
        Transmitter {
            ip,
            net,
            mode,
            receiver: Endpoint::new(receiver_ip, ports::RECEIVER),
            interval: SimDuration::from_secs(timing::TRANSMIT_INTERVAL_SECS),
            sysdb,
            netdb,
            secdb,
        }
    }

    pub fn with_interval(mut self, interval: SimDuration) -> Transmitter {
        self.interval = interval;
        self
    }

    /// The passive-mode listening endpoint (port 1110 of Table 4.2).
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::new(self.ip, ports::TRANSMITTER)
    }

    pub fn start(&self, s: &mut Scheduler) {
        match self.mode {
            Mode::Centralized => {
                let tx = self.clone();
                s.schedule_in(self.interval, move |s| tx.tick(s));
            }
            Mode::Distributed => {
                let tx = self.clone();
                self.net.bind_stream(self.endpoint(), move |s, msg| {
                    if &msg.payload.data[..] == PULL_REQUEST {
                        s.telemetry.counter_incr("transmitter-pulls");
                        tx.push_snapshot(s);
                    } else {
                        s.telemetry.counter_incr("transmitter-bad-requests");
                    }
                });
            }
        }
    }

    /// Re-install the passive pull listener after the hosting node's
    /// socket table was wiped (host crash). Centralized mode keeps its
    /// scheduler timer loop across a crash — pushes simply fail while the
    /// node is down — so there is nothing to re-bind.
    pub fn rebind(&self, s: &mut Scheduler) {
        if self.mode == Mode::Distributed {
            self.start(s);
        }
    }

    fn tick(&self, s: &mut Scheduler) {
        self.push_snapshot(s);
        let tx = self.clone();
        s.schedule_in(self.interval, move |s| tx.tick(s));
    }

    /// Snapshot all three databases and ship them as one framed message.
    /// System rows travel as `SystemAged` frames so the receiver can
    /// reconstruct each record's original report time — without the age a
    /// monitor-side stale row would look freshly minted to the wizard.
    pub fn push_snapshot(&self, s: &mut Scheduler) {
        let sys = Frame::system_aged(&self.sysdb.read().aged_snapshot(s.now()));
        let net_frame = Frame::network(&self.netdb.read().snapshot());
        let sec = Frame::security(&self.secdb.read().snapshot());
        let mut wire =
            BytesMut::with_capacity(sys.wire_len() + net_frame.wire_len() + sec.wire_len());
        sys.encode(&mut wire);
        net_frame.encode(&mut wire);
        sec.encode(&mut wire);
        s.telemetry.counter_incr("transmitter-snapshots");
        s.telemetry.counter_add("transmitter-bytes", wire.len() as u64);
        let from = Endpoint::new(self.ip, ports::TRANSMITTER);
        self.net.send_stream(s, from, self.receiver, Payload::data(wire.freeze()));
    }
}

/// The receiver daemon on the wizard machine.
#[derive(Clone)]
pub struct Receiver {
    ip: Ip,
    net: Network,
    sysdb: SharedSysDb,
    netdb: SharedNetDb,
    secdb: SharedSecDb,
}

impl Receiver {
    pub fn new(
        ip: Ip,
        net: Network,
        sysdb: SharedSysDb,
        netdb: SharedNetDb,
        secdb: SharedSecDb,
    ) -> Receiver {
        Receiver { ip, net, sysdb, netdb, secdb }
    }

    pub fn endpoint(&self) -> Endpoint {
        Endpoint::new(self.ip, ports::RECEIVER)
    }

    /// Bind the frame sink. Incoming snapshots *merge* per record type —
    /// several monitor machines may feed one receiver, and each snapshot
    /// carries the full state of its sender's databases.
    pub fn start(&self, s: &mut Scheduler) {
        let _ = s;
        let rx = self.clone();
        self.net.bind_stream(self.endpoint(), move |s, msg| {
            let mut buf = BytesMut::from(&msg.payload.data[..]);
            loop {
                match Frame::decode(&mut buf) {
                    Ok(Some(frame)) => rx.apply(s, frame),
                    Ok(None) => break,
                    Err(_) => {
                        s.telemetry.counter_incr("receiver-bad-frames");
                        break;
                    }
                }
            }
        });
    }

    fn apply(&self, s: &mut Scheduler, frame: Frame) {
        s.telemetry.counter_incr("receiver-frames");
        s.telemetry.counter_add("receiver-bytes", frame.wire_len() as u64);
        match frame.rtype {
            smartsock_proto::RecordType::System => match frame.decode_system() {
                Ok(reports) => {
                    let now = s.now();
                    let mut db = self.sysdb.write();
                    for r in reports {
                        db.upsert(r, now);
                    }
                }
                Err(_) => s.telemetry.counter_incr("receiver-bad-frames"),
            },
            smartsock_proto::RecordType::SystemAged => match frame.decode_system_aged() {
                Ok(reports) => {
                    let now = s.now();
                    let mut db = self.sysdb.write();
                    for (r, age_ns) in reports {
                        // Rebuild the original report time in this
                        // machine's timeline (clamped at the origin).
                        let recorded = smartsock_sim::SimTime(now.0.saturating_sub(age_ns));
                        db.upsert(r, recorded);
                    }
                }
                Err(_) => s.telemetry.counter_incr("receiver-bad-frames"),
            },
            smartsock_proto::RecordType::Network => match frame.decode_network() {
                Ok(recs) => {
                    let mut db = self.netdb.write();
                    for r in recs {
                        db.upsert(r);
                    }
                }
                Err(_) => s.telemetry.counter_incr("receiver-bad-frames"),
            },
            smartsock_proto::RecordType::Security => match frame.decode_security() {
                Ok(recs) => {
                    let mut db = self.secdb.write();
                    for r in recs {
                        db.upsert(r);
                    }
                }
                Err(_) => s.telemetry.counter_incr("receiver-bad-frames"),
            },
        }
    }

    /// Distributed mode: ask every listed transmitter for a fresh snapshot
    /// (§3.5.2: "a wizard triggers all transmitters participating in the
    /// computing task to send updated reports").
    pub fn request_update(&self, s: &mut Scheduler, transmitters: &[Ip]) {
        for &tx in transmitters {
            let from = self.endpoint();
            let to = Endpoint::new(tx, ports::TRANSMITTER);
            s.telemetry.counter_incr("receiver-pull-requests");
            self.net.send_stream(s, from, to, Payload::data(PULL_REQUEST));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsock_monitor::db::shared_dbs;
    use smartsock_net::{HostParams, LinkParams, NetworkBuilder};
    use smartsock_proto::{NetPathRecord, SecurityRecord, ServerStatusReport};
    use smartsock_sim::SimTime;

    struct Rig {
        s: Scheduler,
        net: Network,
        mon_dbs: (SharedSysDb, SharedNetDb, SharedSecDb),
        wiz_dbs: (SharedSysDb, SharedNetDb, SharedSecDb),
        mon_ip: Ip,
        wiz_ip: Ip,
    }

    fn rig() -> Rig {
        let mut b = NetworkBuilder::new(55);
        let mon = b.host("monmachine", Ip::new(192, 168, 1, 1), HostParams::testbed());
        let wiz = b.host("wizmachine", Ip::new(192, 168, 2, 1), HostParams::testbed());
        let r = b.router("core", Ip::new(192, 168, 0, 254));
        b.duplex(mon, r, LinkParams::lan_100mbps());
        b.duplex(r, wiz, LinkParams::lan_100mbps());
        Rig {
            s: Scheduler::new(),
            net: b.build(),
            mon_dbs: shared_dbs(),
            wiz_dbs: shared_dbs(),
            mon_ip: Ip::new(192, 168, 1, 1),
            wiz_ip: Ip::new(192, 168, 2, 1),
        }
    }

    fn seed_monitor_dbs(r: &Rig) {
        let mut report = ServerStatusReport::empty("helene", Ip::new(192, 168, 3, 10));
        report.load1 = 0.5;
        report.mem_free = 100 << 20;
        r.mon_dbs.0.write().upsert(report, SimTime::ZERO);
        r.mon_dbs.1.write().upsert(NetPathRecord {
            from_monitor: r.mon_ip,
            to_monitor: Ip::new(192, 168, 5, 1),
            delay_ms: 1.2,
            bw_mbps: 88.0,
            timestamp_ns: 0,
        });
        r.mon_dbs.2.write().upsert(SecurityRecord {
            host: "helene".into(),
            ip: Ip::new(192, 168, 3, 10),
            level: 3,
        });
    }

    #[test]
    fn centralized_mode_pushes_snapshots_periodically() {
        let mut r = rig();
        seed_monitor_dbs(&r);
        Receiver::new(
            r.wiz_ip,
            r.net.clone(),
            r.wiz_dbs.0.clone(),
            r.wiz_dbs.1.clone(),
            r.wiz_dbs.2.clone(),
        )
        .start(&mut r.s);
        Transmitter::new(
            r.mon_ip,
            r.net.clone(),
            Mode::Centralized,
            r.wiz_ip,
            r.mon_dbs.0.clone(),
            r.mon_dbs.1.clone(),
            r.mon_dbs.2.clone(),
        )
        .start(&mut r.s);

        r.s.run_until(SimTime::from_secs(5));
        assert!(r.s.telemetry.counter("transmitter-snapshots") >= 2);
        let wiz_sys = r.wiz_dbs.0.read().snapshot();
        assert_eq!(wiz_sys.len(), 1);
        assert_eq!(wiz_sys[0].host.as_str(), "helene");
        assert_eq!(wiz_sys[0].mem_free, 100 << 20);
        assert_eq!(
            r.wiz_dbs.1.read().get(r.mon_ip, Ip::new(192, 168, 5, 1)).unwrap().bw_mbps,
            88.0
        );
        assert_eq!(r.wiz_dbs.2.read().level_of(Ip::new(192, 168, 3, 10)), Some(3));
    }

    #[test]
    fn distributed_mode_sends_only_on_pull() {
        let mut r = rig();
        seed_monitor_dbs(&r);
        let rx = Receiver::new(
            r.wiz_ip,
            r.net.clone(),
            r.wiz_dbs.0.clone(),
            r.wiz_dbs.1.clone(),
            r.wiz_dbs.2.clone(),
        );
        rx.start(&mut r.s);
        Transmitter::new(
            r.mon_ip,
            r.net.clone(),
            Mode::Distributed,
            r.wiz_ip,
            r.mon_dbs.0.clone(),
            r.mon_dbs.1.clone(),
            r.mon_dbs.2.clone(),
        )
        .start(&mut r.s);

        r.s.run_until(SimTime::from_secs(10));
        assert_eq!(r.s.telemetry.counter("transmitter-snapshots"), 0, "no unsolicited pushes");
        assert!(r.wiz_dbs.0.read().is_empty());

        rx.request_update(&mut r.s, &[r.mon_ip]);
        r.s.run_until(SimTime::from_secs(12));
        assert_eq!(r.s.telemetry.counter("transmitter-pulls"), 1);
        assert_eq!(r.s.telemetry.counter("transmitter-snapshots"), 1);
        assert_eq!(r.wiz_dbs.0.read().len(), 1);
    }

    #[test]
    fn updates_overwrite_older_records() {
        let mut r = rig();
        seed_monitor_dbs(&r);
        let rx = Receiver::new(
            r.wiz_ip,
            r.net.clone(),
            r.wiz_dbs.0.clone(),
            r.wiz_dbs.1.clone(),
            r.wiz_dbs.2.clone(),
        );
        rx.start(&mut r.s);
        let tx = Transmitter::new(
            r.mon_ip,
            r.net.clone(),
            Mode::Centralized,
            r.wiz_ip,
            r.mon_dbs.0.clone(),
            r.mon_dbs.1.clone(),
            r.mon_dbs.2.clone(),
        );
        tx.start(&mut r.s);
        r.s.run_until(SimTime::from_secs(3));
        assert_eq!(r.wiz_dbs.0.read().snapshot()[0].load1, 0.5);

        // The monitor learns a new load value; the next push propagates it.
        let mut newer = ServerStatusReport::empty("helene", Ip::new(192, 168, 3, 10));
        newer.load1 = 2.5;
        r.mon_dbs.0.write().upsert(newer, r.s.now());
        r.s.run_until(SimTime::from_secs(6));
        assert_eq!(r.wiz_dbs.0.read().snapshot()[0].load1, 2.5);
    }

    #[test]
    fn row_staleness_survives_the_transmitter_receiver_hop() {
        let mut r = rig();
        // One row recorded at t=0; the transmitter pushes at t=2,4,...
        // Without age transport the wizard copy would read recorded_at as
        // the arrival time; with it, the copy tracks the true report time.
        seed_monitor_dbs(&r);
        Receiver::new(
            r.wiz_ip,
            r.net.clone(),
            r.wiz_dbs.0.clone(),
            r.wiz_dbs.1.clone(),
            r.wiz_dbs.2.clone(),
        )
        .start(&mut r.s);
        Transmitter::new(
            r.mon_ip,
            r.net.clone(),
            Mode::Centralized,
            r.wiz_ip,
            r.mon_dbs.0.clone(),
            r.mon_dbs.1.clone(),
            r.mon_dbs.2.clone(),
        )
        .start(&mut r.s);
        r.s.run_until(SimTime::from_secs(9));
        let db = r.wiz_dbs.0.read();
        let row = db.get(Ip::new(192, 168, 3, 10)).expect("row arrived");
        // Recorded at t=0 on the monitor; the copy's timestamp lands
        // within transit delay of the origin, nowhere near the ~8 s of
        // pushes that have happened since.
        assert!(
            row.recorded_at < SimTime::from_secs_f64(0.1),
            "staleness lost in transit: recorded_at = {:?}",
            row.recorded_at
        );
    }

    #[test]
    fn garbage_requests_and_frames_are_counted() {
        let mut r = rig();
        Transmitter::new(
            r.mon_ip,
            r.net.clone(),
            Mode::Distributed,
            r.wiz_ip,
            r.mon_dbs.0.clone(),
            r.mon_dbs.1.clone(),
            r.mon_dbs.2.clone(),
        )
        .start(&mut r.s);
        let rx = Receiver::new(
            r.wiz_ip,
            r.net.clone(),
            r.wiz_dbs.0.clone(),
            r.wiz_dbs.1.clone(),
            r.wiz_dbs.2.clone(),
        );
        rx.start(&mut r.s);
        // Garbage pull request.
        let from = Endpoint::new(r.wiz_ip, 45000);
        r.net.send_stream(
            &mut r.s,
            from,
            Endpoint::new(r.mon_ip, ports::TRANSMITTER),
            Payload::data(&b"HAX"[..]),
        );
        // Garbage frame stream to the receiver.
        r.net.send_stream(
            &mut r.s,
            from,
            rx.endpoint(),
            Payload::data(vec![9u8, 9, 9, 9, 4, 0, 0, 0, 1, 2, 3, 4]),
        );
        r.s.run_until(SimTime::from_secs(2));
        assert_eq!(r.s.telemetry.counter("transmitter-bad-requests"), 1);
        assert_eq!(r.s.telemetry.counter("receiver-bad-frames"), 1);
    }

    #[test]
    fn snapshot_bytes_scale_with_record_count() {
        // 11 probes + 1 net record + 2 security records at 2 s intervals is
        // the Table 5.2 configuration (~1.2 KBps measured). Our frames:
        // 11×204 + 32 + 2×32 + headers ≈ 2.4 KB per push ⇒ ~1.2 KBps.
        let r = rig();
        for i in 0..11u8 {
            r.mon_dbs.0.write().upsert(
                ServerStatusReport::empty(format!("srv{i}").as_str(), Ip::new(192, 168, 4, i)),
                SimTime::ZERO,
            );
        }
        seed_monitor_dbs(&r); // +1 more sys record, 1 net, 1 sec
        let sys = Frame::system(&r.mon_dbs.0.read().snapshot());
        let netf = Frame::network(&r.mon_dbs.1.read().snapshot());
        let secf = Frame::security(&r.mon_dbs.2.read().snapshot());
        let total = sys.wire_len() + netf.wire_len() + secf.wire_len();
        // 12 system records now; per 2 s push that is ~1.25 KBps.
        assert!(total > 2000 && total < 3500, "snapshot is {total} bytes");
    }
}
