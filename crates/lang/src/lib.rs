//! # smartsock-lang
//!
//! The server-requirement meta language of the Smart TCP socket library
//! (paper §3.6.1 and §4.3, Appendix B).
//!
//! Users describe what servers their application needs as a small program:
//!
//! ```text
//! host_system_load1 < 1
//! host_memory_used <= 250*1024*1024
//! host_cpu_free >= 0.9
//! host_network_tbytesps < 1024*1024   # for network IO
//! user_denied_host1 = 137.132.90.182
//! user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
//! ```
//!
//! Each line is a statement. A statement whose top-level operator is
//! *logical* (`<, <=, >, >=, ==, !=, &&, ||`) contributes to the
//! qualification decision; a server qualifies only if **every** logical
//! statement evaluates true. Non-logical statements define temporary
//! variables and perform arithmetic. The original implementation used
//! flex/bison rules (Figs 4.1/4.2, after the `hoc` calculator of Kernighan
//! & Pike); this crate re-implements the same language with a hand-written
//! lexer and a precedence-climbing parser, preserving the quirks that give
//! the language its semantics:
//!
//! * the `logic` flag follows the **last-reduced** (top-most) operator, so
//!   `(a+b) <= b` is logical but `a + (b<c)` is not;
//! * parentheses preserve the inner logic flag;
//! * a statement using an uninitialised temp variable in a logical
//!   position makes that statement false (and so disqualifies the server);
//! * division by zero is an execution error — the server is not qualified;
//! * assignments to `user_preferred_hostN` / `user_denied_hostN` populate
//!   the whitelist/blacklist instead of the numeric environment, and accept
//!   IPs, dotted domain names, or bare host names on the right-hand side.
//!
//! # Deviations from the thesis (documented in DESIGN.md)
//!
//! * Host names may contain `-` (the paper's own experiments blacklist
//!   `titan-x` and `pandora-x`, which the printed lexer rules cannot
//!   tokenise; we extend the NETADDR/ident character classes accordingly).
//! * Memory-valued variables are defined in **bytes** (the worked example
//!   in §3.6.2 compares against `250*1024*1024`); Tables 5.3–5.6 write
//!   `host_memory_free > 5` meaning MB, which the harness spells as
//!   `5*1024*1024`.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod ast;
pub mod eval;
pub mod interval;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod vars;

pub use ast::{BinOp, Expr, Requirement, Stmt};
pub use eval::{Decision, EvalError, Evaluator, HostLists, MapVars, VarProvider};
pub use interval::{may_qualify, MapRanges, RangeProvider};
pub use lexer::{LexError, Lexer};
pub use parser::{parse, ParseError};
pub use token::Token;
pub use vars::{builtin_fn, is_server_var, is_user_host_var, SERVER_VARS, USER_VARS};

/// Any error arising while compiling a requirement.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    Lex(LexError),
    Parse(ParseError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lexical error: {e}"),
            CompileError::Parse(e) => write!(f, "syntax error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LexError> for CompileError {
    fn from(e: LexError) -> Self {
        CompileError::Lex(e)
    }
}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

/// Compile a requirement text into its executable form.
///
/// This is the entry point the wizard calls once per user request; the
/// compiled [`Requirement`] is then evaluated against every candidate
/// server.
///
/// # Example
///
/// ```
/// use smartsock_lang::{compile, Evaluator, MapVars};
///
/// let req = compile("host_cpu_free >= 0.9\nhost_system_load1 < 1\n").unwrap();
/// assert_eq!(req.logical_count(), 2);
///
/// let idle = MapVars::new()
///     .with("host_cpu_free", 0.97)
///     .with("host_system_load1", 0.1);
/// assert!(Evaluator::evaluate(&req, &idle).qualified);
///
/// let busy = MapVars::new()
///     .with("host_cpu_free", 0.2)
///     .with("host_system_load1", 1.8);
/// assert!(!Evaluator::evaluate(&req, &busy).qualified);
/// ```
pub fn compile(text: &str) -> Result<Requirement, CompileError> {
    let tokens = Lexer::new(text).tokenize()?;
    Ok(parse(&tokens)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_accepts_the_papers_sample_requirement() {
        // Verbatim from §3.6.2 (comment garbage included).
        let text = "\
host_system_load1 < 1
host_memory_used <= 250*1024*1024
host_cpu_free >= 0.9
#ldjfaldjfalsjff #akldjfaldfj
#some comments
host_network_tbytesps < 1024*1024  # for network IO
# comments
user_denied_host1 = 137.132.90.182
user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
#
";
        let req = compile(text).expect("paper sample must compile");
        assert_eq!(req.stmts.len(), 6);
    }

    #[test]
    fn compile_reports_lex_and_parse_errors_distinctly() {
        assert!(matches!(compile("a ~ b"), Err(CompileError::Lex(_))));
        assert!(matches!(compile("a + * b"), Err(CompileError::Parse(_))));
    }
}
