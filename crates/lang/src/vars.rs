//! Predefined variables, constants and math builtins (paper Appendix B).
//!
//! * **Server-side variables** (B.1) are filled from the status databases
//!   when a server is examined; the thesis counts "in total 22 server-side
//!   variables", which we enumerate below (22 `host_*` entries), plus the
//!   two `monitor_*` network-metric variables the massd experiments use
//!   (Tables 5.7–5.9).
//! * **User-side variables** (B.2) are the ten preferred/denied host slots.
//! * **Constants** (B.3) follow `hoc`: `PI`, `E`, `GAMMA`, `DEG`, `PHI`.
//! * **Math functions** (B.4): "built-in functions such as exp, sin, cos
//!   and log10" — we provide the full `hoc` set.

/// The 22 server-side variables of Appendix B.1, in documentation order.
pub const SERVER_VARS: [&str; 22] = [
    "host_system_load1",
    "host_system_load5",
    "host_system_load15",
    "host_cpu_user",
    "host_cpu_nice",
    "host_cpu_system",
    "host_cpu_idle",
    "host_cpu_free",
    "host_cpu_bogomips",
    "host_memory_total",
    "host_memory_used",
    "host_memory_free",
    "host_memory_buffers",
    "host_memory_cached",
    "host_disk_allreq",
    "host_disk_rreq",
    "host_disk_rblocks",
    "host_disk_wreq",
    "host_disk_wblocks",
    "host_network_rbytesps",
    "host_network_tbytesps",
    "host_security_level",
];

/// Service-class flags (§6 extension): 1.0 when the host advertises the
/// class, 0.0 otherwise.
pub const SERVICE_VARS: [&str; 4] =
    ["host_service_compute", "host_service_file", "host_service_render", "host_service_database"];

/// Network-metric variables resolved from the network monitor's records
/// (`netdb`): available bandwidth in Mbps and delay in milliseconds of the
/// path from the client's group to the candidate server's group.
pub const MONITOR_VARS: [&str; 2] = ["monitor_network_bw", "monitor_network_delay"];

/// The 10 user-side variables of Appendix B.2.
pub const USER_VARS: [&str; 10] = [
    "user_preferred_host1",
    "user_preferred_host2",
    "user_preferred_host3",
    "user_preferred_host4",
    "user_preferred_host5",
    "user_denied_host1",
    "user_denied_host2",
    "user_denied_host3",
    "user_denied_host4",
    "user_denied_host5",
];

/// True if `name` is one of the server-side (or monitor) variables whose
/// value the wizard supplies from status reports.
pub fn is_server_var(name: &str) -> bool {
    SERVER_VARS.contains(&name) || MONITOR_VARS.contains(&name) || SERVICE_VARS.contains(&name)
}

/// True if `name` is a user-side host-list variable; assignments to these
/// populate the preferred/denied lists instead of the numeric environment.
pub fn is_user_host_var(name: &str) -> bool {
    USER_VARS.contains(&name)
}

/// Whether a `user_*_host` variable denotes the preferred list (`true`) or
/// the denied list (`false`). `None` for other names.
pub fn user_host_polarity(name: &str) -> Option<bool> {
    if !is_user_host_var(name) {
        return None;
    }
    Some(name.starts_with("user_preferred"))
}

/// Named constants (Appendix B.3, following `hoc`).
pub fn constant(name: &str) -> Option<f64> {
    Some(match name {
        "PI" => std::f64::consts::PI,
        "E" => std::f64::consts::E,
        "GAMMA" => 0.577_215_664_901_532_9, // Euler–Mascheroni
        "DEG" => 57.295_779_513_082_32,     // degrees per radian
        "PHI" => 1.618_033_988_749_895,     // golden ratio
        _ => return None,
    })
}

/// One-argument math builtins (Appendix B.4, following `hoc`).
///
/// `log` is the natural logarithm; `int` truncates toward zero.
pub fn builtin_fn(name: &str) -> Option<fn(f64) -> f64> {
    Some(match name {
        "sin" => f64::sin,
        "cos" => f64::cos,
        "atan" => f64::atan,
        "exp" => f64::exp,
        "log" => f64::ln,
        "log10" => f64::log10,
        "sqrt" => f64::sqrt,
        "abs" => f64::abs,
        "int" => f64::trunc,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_22_server_vars_as_the_thesis_counts() {
        assert_eq!(SERVER_VARS.len(), 22);
        // No duplicates.
        let mut sorted = SERVER_VARS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 22);
    }

    #[test]
    fn exactly_10_user_vars() {
        assert_eq!(USER_VARS.len(), 10);
        assert!(USER_VARS.iter().all(|v| is_user_host_var(v)));
    }

    #[test]
    fn polarity_detection() {
        assert_eq!(user_host_polarity("user_preferred_host3"), Some(true));
        assert_eq!(user_host_polarity("user_denied_host5"), Some(false));
        assert_eq!(user_host_polarity("host_cpu_free"), None);
    }

    #[test]
    fn service_vars_are_server_side() {
        for v in SERVICE_VARS {
            assert!(is_server_var(v));
            assert!(!is_user_host_var(v));
        }
    }

    #[test]
    fn classification_is_disjoint() {
        for v in SERVER_VARS {
            assert!(!is_user_host_var(v));
        }
        for v in USER_VARS {
            assert!(!is_server_var(v));
        }
    }

    #[test]
    fn builtins_from_the_paper_are_present() {
        // §3.6.2: "built-in functions such as exp, sin, cos and log10".
        for f in ["exp", "sin", "cos", "log10", "sqrt", "abs", "int", "log", "atan"] {
            assert!(builtin_fn(f).is_some(), "missing builtin {f}");
        }
        assert!(builtin_fn("frobnicate").is_none());
        assert_eq!(builtin_fn("log10").unwrap()(1000.0), 3.0);
        assert_eq!(builtin_fn("int").unwrap()(-2.7), -2.0);
    }

    #[test]
    fn constants_resolve() {
        assert_eq!(constant("PI"), Some(std::f64::consts::PI));
        assert_eq!(constant("E"), Some(std::f64::consts::E));
        assert_eq!(constant("nope"), None);
    }
}
