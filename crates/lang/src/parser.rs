//! Recursive-descent / precedence-climbing parser for the grammar of paper
//! Fig 4.2.
//!
//! Operator precedence follows the `hoc` calculator the thesis's yacc rules
//! are built on (Kernighan & Pike, *The UNIX Programming Environment*):
//!
//! ```text
//! lowest   =          (right associative, assignment)
//!          ||
//!          &&
//!          == !=
//!          < <= > >=
//!          + -
//!          * /
//!          unary -
//! highest  ^          (right associative)
//! ```
//!
//! Each newline-terminated line is one statement. Assignments to
//! `user_preferred_hostN` / `user_denied_hostN` are parsed as
//! [`Stmt::HostAssign`] with a host designator (IP, domain name or bare
//! host name) on the right-hand side; everything else is an expression
//! statement.

use crate::ast::{BinOp, Expr, Requirement, Stmt};
use crate::token::Token;
use crate::vars::is_user_host_var;

/// A syntax error with the offending token (if any) and a message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Index into the token stream where the error occurred.
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a token stream (as produced by [`crate::Lexer::tokenize`]) into a
/// [`Requirement`].
pub fn parse(tokens: &[Token]) -> Result<Requirement, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        if p.eat(&Token::Newline) {
            continue; // blank / comment-only line
        }
        stmts.push(p.statement()?);
    }
    let source = render_source(tokens);
    Ok(Requirement { stmts, source })
}

fn render_source(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        if *t == Token::Newline {
            out.push('\n');
        } else {
            if !out.is_empty() && !out.ends_with('\n') {
                out.push(' ');
            }
            out.push_str(&t.to_string());
        }
    }
    out
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        match self.bump() {
            Some(Token::Newline) | None => Ok(()),
            Some(other) => Err(ParseError {
                at: self.pos - 1,
                message: format!("expected end of statement, found {other}"),
            }),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        // user_*_hostN = <designator>
        if let (Some(Token::Ident(name)), Some(Token::Assign)) = (self.peek(), self.peek2()) {
            if is_user_host_var(name) {
                let param = name.clone();
                self.bump(); // ident
                self.bump(); // '='
                let host = self.host_designator()?;
                self.expect_newline()?;
                return Ok(Stmt::HostAssign { param, host });
            }
        }
        let e = self.expr(0)?;
        self.expect_newline()?;
        Ok(Stmt::Expr(e))
    }

    /// Right-hand side of a user host-list assignment: one IP, domain name
    /// or bare host-name token.
    fn host_designator(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::NetAddr(a)) => Ok(a.clone()),
            Some(Token::Ident(h)) => Ok(h.clone()),
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!(
                    "expected a host (IP, domain or host name), found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
            }),
        }
    }

    /// Precedence of a binary operator token, or `None` if not binary.
    fn binop_of(tok: &Token) -> Option<(BinOp, u8, bool)> {
        // (operator, precedence, right_associative)
        Some(match tok {
            Token::Or => (BinOp::Or, 1, false),
            Token::And => (BinOp::And, 2, false),
            Token::EqEq => (BinOp::Eq, 3, false),
            Token::Ne => (BinOp::Ne, 3, false),
            Token::Lt => (BinOp::Lt, 4, false),
            Token::Le => (BinOp::Le, 4, false),
            Token::Gt => (BinOp::Gt, 4, false),
            Token::Ge => (BinOp::Ge, 4, false),
            Token::Plus => (BinOp::Add, 5, false),
            Token::Minus => (BinOp::Sub, 5, false),
            Token::Star => (BinOp::Mul, 6, false),
            Token::Slash => (BinOp::Div, 6, false),
            Token::Caret => (BinOp::Pow, 8, true),
            _ => return None,
        })
    }

    fn expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(tok) = self.peek() {
            let Some((op, prec, right)) = Self::binop_of(tok) else { break };
            if prec < min_prec {
                break;
            }
            self.bump();
            let next_min = if right { prec } else { prec + 1 };
            let rhs = self.expr(next_min)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            // `%prec UNARYMINUS`: binds tighter than * but looser than ^,
            // so -2^2 parses as -(2^2), matching hoc.
            let inner = self.expr(8)?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let at = self.pos;
        match self.bump().cloned() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::NetAddr(a)) => Ok(Expr::NetAddr(a)),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    // BLTIN '(' expr ')'
                    self.bump();
                    let arg = self.expr(0)?;
                    if !self.eat(&Token::RParen) {
                        return Err(self.err("expected ')' after function argument"));
                    }
                    return Ok(Expr::Call(name, Box::new(arg)));
                }
                if self.peek() == Some(&Token::Assign) {
                    // Nested assignment expression (hoc allows it).
                    self.bump();
                    let rhs = self.expr(0)?;
                    return Ok(Expr::Assign(name, Box::new(rhs)));
                }
                Ok(Expr::Var(name))
            }
            Some(Token::LParen) => {
                let inner = self.expr(0)?;
                if !self.eat(&Token::RParen) {
                    return Err(self.err("expected ')'"));
                }
                Ok(Expr::Paren(Box::new(inner)))
            }
            other => Err(ParseError {
                at,
                message: format!(
                    "expected an expression, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexer;

    fn req(s: &str) -> Requirement {
        parse(&Lexer::new(s).tokenize().unwrap()).unwrap()
    }

    fn one_expr(s: &str) -> Expr {
        let r = req(s);
        assert_eq!(r.stmts.len(), 1, "expected one statement in {s:?}");
        match &r.stmts[0] {
            Stmt::Expr(e) => e.clone(),
            other => panic!("expected expression statement, got {other:?}"),
        }
    }

    #[test]
    fn precedence_arithmetic_before_comparison() {
        let e = one_expr("a + b < c * d");
        // (a+b) < (c*d)
        match &e {
            Expr::Binary(BinOp::Lt, l, r) => {
                assert!(matches!(**l, Expr::Binary(BinOp::Add, _, _)));
                assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
        assert!(e.is_logical());
    }

    #[test]
    fn comparison_before_and_before_or() {
        let e = one_expr("a < 1 && b > 2 || c == 3");
        match &e {
            Expr::Binary(BinOp::Or, l, _) => {
                assert!(matches!(**l, Expr::Binary(BinOp::And, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative_and_tightest() {
        let e = one_expr("2 ^ 3 ^ 2");
        match &e {
            Expr::Binary(BinOp::Pow, _, r) => {
                assert!(matches!(**r, Expr::Binary(BinOp::Pow, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
        // -2^2 = -(2^2)
        let e = one_expr("-2 ^ 2");
        assert!(matches!(e, Expr::Neg(_)));
    }

    #[test]
    fn unary_minus_tighter_than_multiplication() {
        // hoc parses -a*b as (-a)*b... actually -a binds the whole power
        // expression: -a^2*b = (-(a^2))*b. Verify -a * b is Mul(Neg(a), b).
        let e = one_expr("- a * b");
        match e {
            Expr::Binary(BinOp::Mul, l, _) => assert!(matches!(*l, Expr::Neg(_))),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn parenthesised_comparison_stays_logical() {
        assert!(one_expr("(a + b) <= b").is_logical());
        assert!(!one_expr("a + (b < c)").is_logical());
        assert!(one_expr("((a < b))").is_logical());
    }

    #[test]
    fn assignment_statement_and_nested_assignment() {
        let e = one_expr("x = 3 + 4");
        assert!(matches!(e, Expr::Assign(ref n, _) if n == "x"));
        assert!(!e.is_logical());

        let e = one_expr("x = y = 2");
        match e {
            Expr::Assign(_, rhs) => assert!(matches!(*rhs, Expr::Assign(_, _))),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn builtin_call() {
        let e = one_expr("log10(x) < 3");
        assert!(e.is_logical());
        match e {
            Expr::Binary(BinOp::Lt, l, _) => {
                assert!(matches!(*l, Expr::Call(ref n, _) if n == "log10"));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn host_assignments_route_to_host_lists() {
        let r = req("user_denied_host1 = 137.132.90.182\nuser_preferred_host1 = sagit.ddns.comp.nus.edu.sg\nuser_denied_host2 = titan-x\n");
        assert_eq!(r.stmts.len(), 3);
        assert_eq!(
            r.stmts[0],
            Stmt::HostAssign { param: "user_denied_host1".into(), host: "137.132.90.182".into() }
        );
        assert_eq!(
            r.stmts[1],
            Stmt::HostAssign {
                param: "user_preferred_host1".into(),
                host: "sagit.ddns.comp.nus.edu.sg".into()
            }
        );
        assert_eq!(
            r.stmts[2],
            Stmt::HostAssign { param: "user_denied_host2".into(), host: "titan-x".into() }
        );
    }

    #[test]
    fn ordinary_var_assignment_is_not_a_host_assign() {
        let r = req("threshold = 42");
        assert!(matches!(r.stmts[0], Stmt::Expr(Expr::Assign(_, _))));
    }

    #[test]
    fn multiline_requirements_count_logical_statements() {
        let r = req("host_cpu_free > 0.9\nlimit = 5\nhost_system_load1 < limit\n");
        assert_eq!(r.stmts.len(), 3);
        assert_eq!(r.logical_count(), 2);
    }

    #[test]
    fn errors_on_garbage() {
        let toks = Lexer::new("a + * b").tokenize().unwrap();
        assert!(parse(&toks).is_err());
        let toks = Lexer::new("(a < b").tokenize().unwrap();
        assert!(parse(&toks).is_err());
        let toks = Lexer::new("a b").tokenize().unwrap();
        assert!(parse(&toks).is_err());
        let toks = Lexer::new("user_denied_host1 = <").tokenize().unwrap();
        assert!(parse(&toks).is_err(), "an operator is not a host designator");
        let toks = Lexer::new("user_denied_host1 = 5 + 5").tokenize().unwrap();
        assert!(parse(&toks).is_err(), "host designator must be a single host token");
    }

    #[test]
    fn empty_and_comment_only_inputs_parse_to_empty() {
        assert_eq!(req("").stmts.len(), 0);
        assert_eq!(req("# just a comment\n\n#another\n").stmts.len(), 0);
    }
}
