//! Hand-written lexer implementing the flex rules of paper Fig 4.1.
//!
//! Classes, in matching priority order exactly as the flex file lists them:
//!
//! 1. `#.*` — comments, ignored;
//! 2. space and tab — ignored;
//! 3. `[0-9]+\.[0-9]+\.[0-9]+\.[0-9]+` — dotted-quad `NETADDR`;
//! 4. `ident "." dotted-tail` — domain-name `NETADDR`;
//! 5. `[0-9]+` / `[0-9]+\.[0-9]+` — `NUMBER`;
//! 6. identifiers; operators; `\n` ends a statement.
//!
//! Deviation: identifiers and domain labels additionally accept `-` when it
//! is *followed by an alphanumeric* (so `titan-x` is one token, matching
//! the hosts the thesis itself blacklists in Table 5.5) while `a - b` and
//! `a -b` still lex as subtraction/negation. The corner case `a-b` lexes as
//! the single identifier `a-b`; requirement authors separate operators with
//! spaces, as every example in the thesis does.

use crate::token::Token;

/// A lexical error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming lexer over a requirement text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    /// Lex the whole input. A trailing [`Token::Newline`] is appended if the
    /// text does not end with one, so the parser always sees terminated
    /// statements.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        while let Some(tok) = self.next_token()? {
            out.push(tok);
        }
        if out.last() != Some(&Token::Newline) && !out.is_empty() {
            out.push(Token::Newline);
        }
        Ok(out)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { line: self.line, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        loop {
            match self.peek() {
                None => return Ok(None),
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'#') => {
                    // `#.*` — comment to end of line; the newline itself is
                    // still significant.
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'\n') => {
                    self.bump();
                    self.line += 1;
                    return Ok(Some(Token::Newline));
                }
                Some(b) if b.is_ascii_digit() => return self.number_or_ip().map(Some),
                Some(b) if b.is_ascii_alphabetic() => return self.ident_or_domain().map(Some),
                Some(_) => return self.operator().map(Some),
            }
        }
    }

    /// True if `-` at the current position continues a word (hyphenated
    /// host/identifier) rather than being a minus operator.
    fn hyphen_joins(&self) -> bool {
        self.peek() == Some(b'-') && self.peek2().is_some_and(|b| b.is_ascii_alphanumeric())
    }

    fn number_or_ip(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        self.eat_digits();
        let mut dots = 0;
        // Count how many `.digits` groups follow to disambiguate
        // NUMBER (`1` / `1.5`) from dotted-quad NETADDR (`1.2.3.4`).
        while self.peek() == Some(b'.') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
            self.bump(); // '.'
            self.eat_digits();
            dots += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        match dots {
            0 | 1 => {
                let v: f64 = text.parse().map_err(|_| self.err(format!("bad number {text:?}")))?;
                Ok(Token::Number(v))
            }
            3 => Ok(Token::NetAddr(text.to_owned())),
            _ => Err(self.err(format!("{text:?} is neither a NUMBER nor a dotted-quad NETADDR"))),
        }
    }

    fn eat_digits(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
    }

    fn ident_or_domain(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        // Leading label: `[a-zA-Z]+[a-zA-Z_0-9-]*`.
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            || self.hyphen_joins()
        {
            self.bump();
        }
        // A dot turns the token into a domain-name NETADDR, consuming the
        // dotted tail `[\.a-zA-Z_0-9-]*`.
        let mut is_domain = false;
        while self.peek() == Some(b'.')
            && self.peek2().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            is_domain = true;
            self.bump(); // '.'
            while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                || self.hyphen_joins()
            {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        if is_domain {
            Ok(Token::NetAddr(text.to_owned()))
        } else {
            Ok(Token::Ident(text.to_owned()))
        }
    }

    fn operator(&mut self) -> Result<Token, LexError> {
        let b = self.bump().expect("operator() called at EOF");
        let two = |lexer: &mut Self, next: u8| -> bool {
            if lexer.peek() == Some(next) {
                lexer.bump();
                true
            } else {
                false
            }
        };
        match b {
            b'&' => {
                if two(self, b'&') {
                    Ok(Token::And)
                } else {
                    Err(self.err("single '&' (did you mean '&&'?)"))
                }
            }
            b'|' => {
                if two(self, b'|') {
                    Ok(Token::Or)
                } else {
                    Err(self.err("single '|' (did you mean '||'?)"))
                }
            }
            b'>' => Ok(if two(self, b'=') { Token::Ge } else { Token::Gt }),
            b'<' => Ok(if two(self, b'=') { Token::Le } else { Token::Lt }),
            b'=' => Ok(if two(self, b'=') { Token::EqEq } else { Token::Assign }),
            b'!' => {
                if two(self, b'=') {
                    Ok(Token::Ne)
                } else {
                    Err(self.err("single '!' (did you mean '!='?)"))
                }
            }
            b'+' => Ok(Token::Plus),
            b'-' => Ok(Token::Minus),
            b'*' => Ok(Token::Star),
            b'/' => Ok(Token::Slash),
            b'^' => Ok(Token::Caret),
            b'(' => Ok(Token::LParen),
            b')' => Ok(Token::RParen),
            other => Err(self.err(format!("unexpected character {:?}", other as char))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Token::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s).tokenize().unwrap()
    }

    #[test]
    fn numbers_and_arithmetic() {
        assert_eq!(
            lex("1 + 2.5 * 3"),
            vec![Number(1.0), Plus, Number(2.5), Star, Number(3.0), Newline]
        );
    }

    #[test]
    fn dotted_quads_are_netaddrs_not_numbers() {
        assert_eq!(lex("137.132.90.182"), vec![NetAddr("137.132.90.182".into()), Newline]);
    }

    #[test]
    fn domain_names_are_netaddrs() {
        assert_eq!(
            lex("sagit.ddns.comp.nus.edu.sg"),
            vec![NetAddr("sagit.ddns.comp.nus.edu.sg".into()), Newline]
        );
    }

    #[test]
    fn hyphenated_hosts_lex_as_one_token() {
        assert_eq!(lex("titan-x"), vec![Ident("titan-x".into()), Newline]);
        assert_eq!(
            lex("pandora-x.comp.nus.edu.sg"),
            vec![NetAddr("pandora-x.comp.nus.edu.sg".into()), Newline]
        );
    }

    #[test]
    fn minus_with_spacing_is_still_an_operator() {
        assert_eq!(lex("a - b"), vec![Ident("a".into()), Minus, Ident("b".into()), Newline]);
        // `-b`: hyphen joins only *between* word characters.
        assert_eq!(lex("- b"), vec![Minus, Ident("b".into()), Newline]);
    }

    #[test]
    fn comments_vanish_but_newlines_survive() {
        assert_eq!(
            lex("a # trailing comment\n# whole-line comment\nb"),
            vec![Ident("a".into()), Newline, Newline, Ident("b".into()), Newline]
        );
    }

    #[test]
    fn all_relational_operators() {
        assert_eq!(
            lex("> >= < <= == != && || ="),
            vec![Gt, Ge, Lt, Le, EqEq, Ne, And, Or, Assign, Newline]
        );
    }

    #[test]
    fn parentheses_and_power() {
        assert_eq!(
            lex("(a ^ 2)"),
            vec![LParen, Ident("a".into()), Caret, Number(2.0), RParen, Newline]
        );
    }

    #[test]
    fn bad_characters_are_reported_with_line_numbers() {
        let e = Lexer::new("ok\nbad ~ here").tokenize().unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('~'));
        assert!(Lexer::new("a & b").tokenize().is_err());
        assert!(Lexer::new("a | b").tokenize().is_err());
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }

    #[test]
    fn malformed_dotted_numbers_are_rejected() {
        assert!(Lexer::new("1.2.3").tokenize().is_err());
        assert!(Lexer::new("1.2.3.4.5").tokenize().is_err());
    }

    #[test]
    fn trailing_newline_is_synthesised() {
        assert_eq!(lex("a"), vec![Ident("a".into()), Newline]);
        assert_eq!(lex(""), Vec::<Token>::new());
    }

    #[test]
    fn underscored_variables_from_the_paper() {
        assert_eq!(
            lex("host_system_load1 < 1"),
            vec![Ident("host_system_load1".into()), Lt, Number(1.0), Newline]
        );
    }
}
