//! Abstract syntax of the requirement language (paper Fig 4.2).

use std::fmt;

/// Binary operators, split by whether they set the `logic` flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

impl BinOp {
    /// True for the operators whose reduction sets `logic = 1` in Fig 4.2.
    /// The value of a statement whose *top-most* operator is logical
    /// contributes to the server qualification product `server_ok`.
    pub fn is_logical(self) -> bool {
        matches!(
            self,
            BinOp::Or
                | BinOp::And
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
        };
        f.write_str(s)
    }
}

/// An expression node.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Number(f64),
    /// An IP or domain name literal; only meaningful on the right-hand side
    /// of user host-list assignments. Using one in a numeric position is an
    /// evaluation error (the thesis's grammar accepts it but assigns no
    /// value).
    NetAddr(String),
    /// A variable reference — temp, server-side, user-side or constant;
    /// resolution happens at evaluation time exactly as in `hoc`.
    Var(String),
    /// `VAR = expr` — defines/overwrites a temp variable; an expression in
    /// its own right (Fig 4.2 lists `asgn` as an `expr` production).
    Assign(String, Box<Expr>),
    /// `BLTIN '(' expr ')'` — one-argument math builtins of Appendix B.4.
    Call(String, Box<Expr>),
    /// Unary minus (`%prec UNARYMINUS`).
    Neg(Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `'(' expr ')'` — kept explicit because parentheses *preserve* the
    /// inner logic flag ("this op will not change logic value").
    Paren(Box<Expr>),
}

impl Expr {
    /// The `logic` flag this expression leaves behind, i.e. whether its
    /// *last reduction* is a logical operator. Statements with a true flag
    /// gate server qualification.
    pub fn is_logical(&self) -> bool {
        match self {
            Expr::Binary(op, _, _) => op.is_logical(),
            Expr::Paren(inner) => inner.is_logical(),
            _ => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => write!(f, "{n}"),
            Expr::NetAddr(a) => write!(f, "{a}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Assign(v, e) => write!(f, "{v} = {e}"),
            Expr::Call(name, arg) => write!(f, "{name}({arg})"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Binary(op, a, b) => write!(f, "{a} {op} {b}"),
            Expr::Paren(e) => write!(f, "({e})"),
        }
    }
}

/// One line of a requirement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// An ordinary expression statement (logical or not).
    Expr(Expr),
    /// `user_preferred_hostN = <host>` / `user_denied_hostN = <host>` —
    /// routed to the whitelist/blacklist rather than the numeric
    /// environment (§4.3 `store_uparams`).
    HostAssign {
        /// The user-side parameter name (`user_denied_host1`, ...).
        param: String,
        /// The host designator text: an IP, domain name or bare host name.
        host: String,
    },
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Expr(e) => write!(f, "{e}"),
            Stmt::HostAssign { param, host } => write!(f, "{param} = {host}"),
        }
    }
}

/// A compiled requirement: the statement list plus its source text (kept
/// for diagnostics and for forwarding in the wire format).
#[derive(Clone, Debug, PartialEq)]
pub struct Requirement {
    pub stmts: Vec<Stmt>,
    pub source: String,
}

impl Requirement {
    /// An empty requirement qualifies every live server (the paper's
    /// "Random" baseline sends `null` requirements).
    pub fn empty() -> Requirement {
        Requirement { stmts: Vec::new(), source: String::new() }
    }

    /// Render back to requirement text. For any compiled requirement,
    /// `compile(req.to_text())` yields the same statement list (Display
    /// for expressions keeps explicit parenthesis nodes, and the parser
    /// only builds precedence-consistent trees) — asserted by a property
    /// test in the workspace suite.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for stmt in &self.stmts {
            out.push_str(&stmt.to_string());
            out.push('\n');
        }
        out
    }

    /// Number of logical statements — the conditions a server must pass.
    pub fn logical_count(&self) -> usize {
        self.stmts.iter().filter(|s| matches!(s, Stmt::Expr(e) if e.is_logical())).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_flag_follows_top_operator() {
        // (a+b) <= b  — logical.
        let e = Expr::Binary(
            BinOp::Le,
            Box::new(Expr::Paren(Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Var("a".into())),
                Box::new(Expr::Var("b".into())),
            )))),
            Box::new(Expr::Var("b".into())),
        );
        assert!(e.is_logical());

        // a + (b<c) — not logical (paper's own example).
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Paren(Box::new(Expr::Binary(
                BinOp::Lt,
                Box::new(Expr::Var("b".into())),
                Box::new(Expr::Var("c".into())),
            )))),
        );
        assert!(!e.is_logical());
    }

    #[test]
    fn parens_preserve_logic() {
        let cmp = Expr::Binary(BinOp::Lt, Box::new(Expr::Number(1.0)), Box::new(Expr::Number(2.0)));
        assert!(Expr::Paren(Box::new(cmp.clone())).is_logical());
        assert!(Expr::Paren(Box::new(Expr::Paren(Box::new(cmp)))).is_logical());
        assert!(!Expr::Paren(Box::new(Expr::Number(1.0))).is_logical());
    }

    #[test]
    fn display_roundtrips_reasonably() {
        let e = Expr::Binary(
            BinOp::Gt,
            Box::new(Expr::Var("host_cpu_free".into())),
            Box::new(Expr::Number(0.9)),
        );
        assert_eq!(e.to_string(), "host_cpu_free > 0.9");
    }
}
