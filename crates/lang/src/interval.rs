//! Interval analysis of requirements — the wizard's shard-pruning oracle.
//!
//! With the status database sharded by /24 subnet (crate
//! `smartsock-monitor`), each shard carries a summary of per-variable value
//! ranges over its rows. Before descending into a shard the wizard asks:
//! *could any host whose variables lie inside these ranges qualify?* This
//! module answers that question by evaluating the requirement over
//! intervals instead of numbers.
//!
//! The analysis is a sound over-approximation of [`crate::Evaluator`]:
//!
//! * [`may_qualify`] returning `false` guarantees that **no** host whose
//!   server variables fall within the provided ranges can qualify — either
//!   some logical statement is definitely false for every such host, or
//!   some statement raises an execution error for every such host;
//! * returning `true` promises nothing — the shard must still be scanned
//!   row by row.
//!
//! Soundness rests on a three-point lattice: a sub-expression evaluates to
//! a closed interval (`Num`), to anything at all (`Any`, used for unknown
//! variables and non-monotone builtins), or to a guaranteed execution
//! error (`Fail`, e.g. a network-address literal in a numeric position).
//! Variable correlation is deliberately ignored (`x - x` spans `[-w, w]`,
//! not `[0, 0]`), which only ever widens intervals and therefore only ever
//! *suppresses* pruning, never causes a wrong prune. The flat-scan
//! equivalence is property-tested in crate `smartsock-wizard`.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Expr, Requirement, Stmt};
use crate::vars::{builtin_fn, constant, is_server_var, is_user_host_var};

/// Supplies per-variable value ranges for a *population* of hosts (one
/// status-database shard, in the wizard).
///
/// The contract: `Some((lo, hi))` asserts that **every** host in the
/// population resolves `name` to a value within `[lo, hi]` (inclusive);
/// `None` means the variable is unknown here — individual hosts may
/// resolve it to any value or fail to resolve it at all.
pub trait RangeProvider {
    fn range(&self, name: &str) -> Option<(f64, f64)>;
}

/// `RangeProvider` backed by a map — for tests and the harness.
#[derive(Clone, Debug, Default)]
pub struct MapRanges {
    pub ranges: BTreeMap<String, (f64, f64)>,
}

impl MapRanges {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, name: &str, lo: f64, hi: f64) -> Self {
        self.ranges.insert(name.to_owned(), (lo, hi));
        self
    }
}

impl RangeProvider for MapRanges {
    fn range(&self, name: &str) -> Option<(f64, f64)> {
        self.ranges.get(name).copied()
    }
}

/// Abstract value of a sub-expression over a host population.
#[derive(Clone, Copy, Debug, PartialEq)]
enum IVal {
    /// Every host's value lies in `[lo, hi]` (lo <= hi, both finite or
    /// infinite but never NaN).
    Num(f64, f64),
    /// Nothing is known: any value, or an error, per host.
    Any,
    /// Evaluation raises an execution error for every host.
    Fail,
}

impl IVal {
    fn point(v: f64) -> IVal {
        IVal::num(v, v)
    }

    /// Build a `Num`, demoting NaN bounds (e.g. from `0 * inf`) to `Any`.
    fn num(lo: f64, hi: f64) -> IVal {
        if lo.is_nan() || hi.is_nan() {
            IVal::Any
        } else {
            IVal::Num(lo.min(hi), lo.max(hi))
        }
    }

    /// True when every host's value is nonzero.
    fn definitely_true(self) -> bool {
        matches!(self, IVal::Num(lo, hi) if lo > 0.0 || hi < 0.0)
    }

    /// True when every host's value is exactly zero.
    fn definitely_false(self) -> bool {
        matches!(self, IVal::Num(lo, hi) if lo == 0.0 && hi == 0.0)
    }
}

/// The `[0, 1]` interval: some hosts may pass, some may not.
const MAYBE: IVal = IVal::Num(0.0, 1.0);

fn bool_ival(definitely: bool, impossible: bool) -> IVal {
    if definitely {
        IVal::point(1.0)
    } else if impossible {
        IVal::point(0.0)
    } else {
        MAYBE
    }
}

/// Could any host whose variables satisfy `ranges` qualify under `req`?
///
/// Returns `false` only when the answer is a provable *no* — the caller
/// may then skip the whole population without changing which servers the
/// flat per-host scan would have selected.
pub fn may_qualify(req: &Requirement, ranges: &dyn RangeProvider) -> bool {
    let mut temps: BTreeMap<String, IVal> = BTreeMap::new();
    for stmt in &req.stmts {
        let expr = match stmt {
            Stmt::HostAssign { .. } => continue, // request-level, not per-server
            Stmt::Expr(e) => e,
        };
        match ival(expr, ranges, &mut temps) {
            // The statement errors for every host: execerror disqualifies.
            IVal::Fail => return false,
            v => {
                if expr.is_logical() && v.definitely_false() {
                    return false;
                }
            }
        }
    }
    true
}

fn ival(expr: &Expr, ranges: &dyn RangeProvider, temps: &mut BTreeMap<String, IVal>) -> IVal {
    match expr {
        Expr::Number(n) => IVal::point(*n),
        Expr::NetAddr(_) => IVal::Fail,
        Expr::Paren(inner) => ival(inner, ranges, temps),
        Expr::Neg(inner) => match ival(inner, ranges, temps) {
            IVal::Num(lo, hi) => IVal::num(-hi, -lo),
            other => other,
        },
        Expr::Var(name) => {
            if is_user_host_var(name) {
                return IVal::Fail;
            }
            // Same resolution order as the concrete evaluator: temps
            // shadow provider ranges shadow constants. A name known
            // nowhere is `Any`, not `Fail`: the range provider may simply
            // not track it (e.g. security/monitor variables) even though
            // per-host lookup resolves it.
            if let Some(v) = temps.get(name) {
                return *v;
            }
            if let Some((lo, hi)) = ranges.range(name) {
                return IVal::num(lo, hi);
            }
            if let Some(v) = constant(name) {
                return IVal::point(v);
            }
            IVal::Any
        }
        Expr::Assign(name, rhs) => {
            if is_server_var(name) || is_user_host_var(name) {
                return IVal::Fail;
            }
            let v = ival(rhs, ranges, temps);
            if v == IVal::Fail {
                return IVal::Fail;
            }
            temps.insert(name.clone(), v);
            v
        }
        Expr::Call(name, arg) => {
            if builtin_fn(name).is_none() {
                return IVal::Fail;
            }
            match ival(arg, ranges, temps) {
                IVal::Fail => IVal::Fail,
                // Builtins are total over f64; no attempt at monotonicity.
                _ => IVal::Any,
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let a = ival(lhs, ranges, temps);
            let b = ival(rhs, ranges, temps);
            // Concrete evaluation propagates the first error with `?`, so
            // a definite error on either side is a definite error overall.
            if a == IVal::Fail || b == IVal::Fail {
                return IVal::Fail;
            }
            binary_ival(*op, a, b)
        }
    }
}

fn binary_ival(op: BinOp, a: IVal, b: IVal) -> IVal {
    use BinOp::*;
    // Logical connectives first: they can conclude even when one side is
    // `Any` (false && anything is false; true || anything is true).
    match op {
        And => {
            return bool_ival(
                a.definitely_true() && b.definitely_true(),
                a.definitely_false() || b.definitely_false(),
            );
        }
        Or => {
            return bool_ival(
                a.definitely_true() || b.definitely_true(),
                a.definitely_false() && b.definitely_false(),
            );
        }
        _ => {}
    }
    let (IVal::Num(alo, ahi), IVal::Num(blo, bhi)) = (a, b) else {
        // Arithmetic with an unknown side is unknown; comparisons with an
        // unknown side may go either way.
        return if op.is_logical() { MAYBE } else { IVal::Any };
    };
    match op {
        Lt => bool_ival(ahi < blo, alo >= bhi),
        Le => bool_ival(ahi <= blo, alo > bhi),
        Gt => bool_ival(alo > bhi, ahi <= blo),
        Ge => bool_ival(alo >= bhi, ahi < blo),
        Eq => bool_ival(alo == ahi && blo == bhi && alo == blo, ahi < blo || bhi < alo),
        Ne => bool_ival(ahi < blo || bhi < alo, alo == ahi && blo == bhi && alo == blo),
        Add => IVal::num(alo + blo, ahi + bhi),
        Sub => IVal::num(alo - bhi, ahi - blo),
        Mul => {
            let p = [alo * blo, alo * bhi, ahi * blo, ahi * bhi];
            IVal::num(
                p.iter().copied().fold(f64::INFINITY, f64::min),
                p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        }
        Div => {
            if blo == 0.0 && bhi == 0.0 {
                // Every host divides by zero: execerror.
                IVal::Fail
            } else if blo <= 0.0 && 0.0 <= bhi {
                // Some hosts may error, others may produce huge values.
                IVal::Any
            } else {
                let q = [alo / blo, alo / bhi, ahi / blo, ahi / bhi];
                IVal::num(
                    q.iter().copied().fold(f64::INFINITY, f64::min),
                    q.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            }
        }
        Pow => IVal::Any,
        And | Or => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::eval::{Evaluator, MapVars};

    fn may(src: &str, ranges: &MapRanges) -> bool {
        may_qualify(&compile(src).unwrap(), ranges)
    }

    fn busy_shard() -> MapRanges {
        MapRanges::new()
            .with("host_cpu_free", 0.05, 0.30)
            .with("host_system_load1", 1.5, 4.0)
            .with("host_memory_free", 1e6, 8e6)
            .with("host_cpu_bogomips", 1730.15, 3591.37)
    }

    fn idle_shard() -> MapRanges {
        MapRanges::new()
            .with("host_cpu_free", 0.92, 0.99)
            .with("host_system_load1", 0.0, 0.2)
            .with("host_memory_free", 1e8, 4e8)
            .with("host_cpu_bogomips", 3394.76, 4771.02)
    }

    #[test]
    fn prunes_definitely_false_comparisons() {
        assert!(!may("host_cpu_free > 0.9\n", &busy_shard()));
        assert!(!may("host_system_load1 < 1\n", &busy_shard()));
        assert!(may("host_cpu_free > 0.9\n", &idle_shard()));
    }

    #[test]
    fn overlapping_ranges_never_prune() {
        let straddling = MapRanges::new().with("host_cpu_free", 0.5, 0.95);
        assert!(may("host_cpu_free > 0.9\n", &straddling));
        assert!(may("host_cpu_free < 0.9\n", &straddling));
    }

    #[test]
    fn boundary_comparisons_respect_inclusiveness() {
        let point = MapRanges::new().with("host_cpu_free", 0.9, 0.9);
        assert!(!may("host_cpu_free > 0.9\n", &point));
        assert!(may("host_cpu_free >= 0.9\n", &point));
        assert!(!may("host_cpu_free < 0.9\n", &point));
        assert!(may("host_cpu_free <= 0.9\n", &point));
        assert!(may("host_cpu_free == 0.9\n", &point));
        assert!(!may("host_cpu_free != 0.9\n", &point));
    }

    #[test]
    fn unknown_variables_block_pruning() {
        // Security/monitor variables are not range-tracked; the shard must
        // be scanned because individual hosts may satisfy the statement.
        assert!(may("host_security_level >= 3\n", &busy_shard()));
        assert!(may("monitor_network_bw > 50\n", &busy_shard()));
        assert!(may("host_cpu_free > 0.9 || host_security_level >= 3\n", &busy_shard()));
    }

    #[test]
    fn conjunction_prunes_when_either_side_is_impossible() {
        let r = busy_shard();
        assert!(!may("(host_cpu_free > 0.9) && (host_security_level >= 3)\n", &r));
        assert!(!may("(host_security_level >= 3) && (host_cpu_free > 0.9)\n", &r));
        assert!(may("(host_cpu_bogomips > 2000) && (host_memory_free > 2*1000*1000)\n", &r));
    }

    #[test]
    fn disjunction_requires_both_sides_impossible() {
        let r = busy_shard();
        assert!(may("(host_cpu_free > 0.9) || (host_cpu_bogomips > 3000)\n", &r));
        assert!(!may("(host_cpu_free > 0.9) || (host_system_load1 < 1)\n", &r));
    }

    #[test]
    fn arithmetic_over_intervals_is_sound() {
        let r = MapRanges::new().with("host_memory_free", 4e6, 8e6);
        // 4–8 MB free can never exceed 10 MB…
        assert!(!may("host_memory_free > 10*1024*1024\n", &r));
        // …but spans the 5 MB threshold of Table 5.3.
        assert!(may("host_memory_free > 5*1024*1024\n", &r));
        // Scaling keeps the interval honest: free/2 is 2–4 MB.
        assert!(!may("host_memory_free / 2 > 4*1024*1024\n", &r));
    }

    #[test]
    fn temp_variables_carry_intervals_between_statements() {
        let r = busy_shard();
        assert!(!may("limit = 0.5 + 0.4\nhost_cpu_free > limit\n", &r));
        assert!(may("limit = 0.5 - 0.4\nhost_cpu_free > limit\n", &r));
        // A temp derived from a server variable inherits its range.
        assert!(!may("x = host_cpu_free * 2\nx > 1\n", &r));
    }

    #[test]
    fn definite_errors_prune() {
        let r = idle_shard();
        // Every host hits the same execerror, so none can qualify.
        assert!(!may("x = 137.132.90.182 + 1\n", &r));
        assert!(!may("host_cpu_free = 1\n", &r));
        assert!(!may("frob(1) > 0\n", &r));
        assert!(!may("x = 1 / 0\n", &r));
        assert!(!may("user_denied_host1 + 1 > 0\n", &r));
    }

    #[test]
    fn possible_division_by_zero_blocks_pruning() {
        // load1 spans zero: some hosts error, some produce huge values.
        let r = MapRanges::new().with("host_system_load1", 0.0, 2.0);
        assert!(may("1 / host_system_load1 > 1000\n", &r));
    }

    #[test]
    fn builtins_and_constants_stay_conservative() {
        let r = busy_shard();
        assert!(may("sqrt(host_cpu_free) > 0.9\n", &r)); // builtins → Any
        assert!(!may("PI > 4\n", &r)); // constants are points
        assert!(may("PI > 3.14\n", &r));
    }

    #[test]
    fn tautologies_and_empty_requirements_pass_everything() {
        let r = busy_shard();
        assert!(may("100 > 0\n", &r));
        assert!(may_qualify(&Requirement::empty(), &r));
        // Host-list statements are request-level and never prune.
        assert!(may("user_denied_host1 = telesto\n", &r));
        // Non-logical zero-valued statements do not disqualify.
        assert!(may("x = 0\nx * 5\n", &r));
    }

    #[test]
    fn negation_flips_intervals() {
        let r = MapRanges::new().with("host_system_load1", 1.0, 2.0);
        assert!(!may("-host_system_load1 > 0\n", &r));
        assert!(may("-host_system_load1 < 0\n", &r));
    }

    #[test]
    fn point_ranges_never_prune_a_qualifying_host() {
        // Soundness spot-check: for a one-host "shard" whose ranges are
        // exact points, a qualified verdict from the concrete evaluator
        // implies may_qualify. (The full flat≡pruned property test lives
        // in crate smartsock-wizard.)
        let cases = [
            "host_cpu_free >= 0.9\nhost_system_load1 < 1\n",
            "(host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)\n",
            "x = host_memory_free / 1024\nx > 100\n",
            "host_cpu_free > 0.9 && host_security_level >= 1\n",
            "log10(host_memory_free) > 5\n",
            "100 > 0\n",
        ];
        let vars = MapVars::new()
            .with("host_cpu_free", 0.95)
            .with("host_system_load1", 0.2)
            .with("host_memory_free", 2e8)
            .with("host_cpu_bogomips", 4771.02)
            .with("host_security_level", 3.0);
        let mut points = MapRanges::new();
        for (name, v) in &vars.vars {
            points = points.with(name, *v, *v);
        }
        for src in cases {
            let req = compile(src).unwrap();
            if Evaluator::evaluate(&req, &vars).qualified {
                assert!(may_qualify(&req, &points), "wrong prune for {src:?}");
            }
        }
    }
}
