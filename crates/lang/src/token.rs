//! Token types of the requirement language (paper Fig 4.1).

use std::fmt;

/// One lexical unit.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// `[0-9]+` or `[0-9]+\.[0-9]+` — the `NUMBER` class.
    Number(f64),
    /// Dotted-quad IPs and dotted domain names — the `NETADDR` class.
    NetAddr(String),
    /// `[a-zA-Z]+[a-zA-Z_0-9-]*` — resolved later into VAR / PARAM /
    /// UPARAM / BLTIN / UNDEF by the parser and evaluator.
    Ident(String),
    /// `&&`
    And,
    /// `||`
    Or,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<` (the paper's lexer calls it ST)
    Lt,
    /// `<=` (SE)
    Le,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^` — exponentiation (`Pow` in Fig 4.2)
    Caret,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `\n` — statement terminator
    Newline,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Number(n) => write!(f, "{n}"),
            Token::NetAddr(s) => write!(f, "{s}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::And => f.write_str("&&"),
            Token::Or => f.write_str("||"),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::EqEq => f.write_str("=="),
            Token::Ne => f.write_str("!="),
            Token::Assign => f.write_str("="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Caret => f.write_str("^"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Newline => f.write_str("\\n"),
        }
    }
}
