//! Requirement evaluation against one candidate server (paper Fig 4.2).
//!
//! The bison actions of Fig 4.2 keep two pieces of mutable state while a
//! requirement runs: a `logic` flag recording whether the last reduction
//! was a logical operator, and `server_ok`, the running *product* of all
//! logical statement values. This module reproduces that machine:
//!
//! * every logical statement must evaluate true (nonzero) for the server to
//!   qualify — `server_ok *= value`;
//! * non-logical statements (assignments, arithmetic) update the temp-var
//!   environment but never the verdict;
//! * execution errors (`undefined variable`, `division by 0`) disqualify
//!   the server — the paper's `execerror` aborts matching for that server,
//!   and an uninitialised temp in a logical statement "will be considered
//!   as a false statement".

use std::collections::BTreeMap;

use crate::ast::{BinOp, Expr, Requirement, Stmt};
use crate::vars::{builtin_fn, constant, is_server_var, is_user_host_var, user_host_polarity};

/// Supplies the values of server-side variables for one candidate server.
///
/// The wizard implements this over its status databases; tests use
/// [`MapVars`].
pub trait VarProvider {
    /// Value of a server-side variable, or `None` if unknown/unsupported.
    fn lookup(&self, name: &str) -> Option<f64>;
}

/// Simple `VarProvider` backed by a map — for tests and the harness.
#[derive(Clone, Debug, Default)]
pub struct MapVars {
    pub vars: BTreeMap<String, f64>,
}

impl MapVars {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, name: &str, value: f64) -> Self {
        self.vars.insert(name.to_owned(), value);
        self
    }
}

impl VarProvider for MapVars {
    fn lookup(&self, name: &str) -> Option<f64> {
        self.vars.get(name).copied()
    }
}

/// The preferred/denied host lists extracted from a requirement
/// (`store_uparams` in Fig 4.2). Order follows statement order; the wizard
/// gives earlier preferred hosts priority.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostLists {
    pub preferred: Vec<String>,
    pub denied: Vec<String>,
}

impl HostLists {
    /// Collect host-list assignments from a compiled requirement.
    pub fn from_requirement(req: &Requirement) -> HostLists {
        let mut lists = HostLists::default();
        for stmt in &req.stmts {
            if let Stmt::HostAssign { param, host } = stmt {
                match user_host_polarity(param) {
                    Some(true) => lists.preferred.push(host.clone()),
                    Some(false) => lists.denied.push(host.clone()),
                    None => {}
                }
            }
        }
        lists
    }
}

/// An error raised while evaluating a requirement for one server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// `execerror("undefined variable", name)`.
    Undefined(String),
    /// `execerror("division by 0", "")`.
    DivisionByZero,
    /// A network address literal used where a number is required.
    NetAddrInExpr(String),
    /// Attempt to overwrite a server-side variable.
    AssignToServerVar(String),
    /// Attempt to use a user host-list variable in a numeric expression.
    UserHostVarInExpr(String),
    /// Call of a function that is not in Appendix B.4.
    UnknownFunction(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Undefined(v) => write!(f, "undefined variable {v}"),
            EvalError::DivisionByZero => f.write_str("division by 0"),
            EvalError::NetAddrInExpr(a) => write!(f, "network address {a} used as a number"),
            EvalError::AssignToServerVar(v) => write!(f, "cannot assign to server variable {v}"),
            EvalError::UserHostVarInExpr(v) => {
                write!(f, "user host variable {v} used as a number")
            }
            EvalError::UnknownFunction(name) => write!(f, "unknown function {name}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The verdict for one candidate server.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// True when every logical statement held and no execution error
    /// occurred — the server is a candidate.
    pub qualified: bool,
    /// How many logical statements evaluated true.
    pub statements_true: usize,
    /// Total number of logical statements evaluated.
    pub statements_total: usize,
    /// Execution errors encountered (each disqualifies the server).
    pub errors: Vec<EvalError>,
}

/// Evaluates compiled requirements against [`VarProvider`]s.
///
/// An `Evaluator` is stateless between calls; temp variables live only for
/// the duration of one `evaluate` call, exactly as the wizard resets its
/// symbol table per server (§3.6.1 step 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct Evaluator;

impl Evaluator {
    /// Run `req` against one server's variables.
    pub fn evaluate(req: &Requirement, provider: &dyn VarProvider) -> Decision {
        let mut temps: BTreeMap<String, f64> = BTreeMap::new();
        let mut decision = Decision {
            qualified: true,
            statements_true: 0,
            statements_total: 0,
            errors: Vec::new(),
        };
        for stmt in &req.stmts {
            let expr = match stmt {
                Stmt::HostAssign { .. } => continue, // request-level, not per-server
                Stmt::Expr(e) => e,
            };
            let logical = expr.is_logical();
            if logical {
                decision.statements_total += 1;
            }
            match eval_expr(expr, provider, &mut temps) {
                Ok(v) => {
                    if logical {
                        // server_ok *= $2
                        if v != 0.0 {
                            decision.statements_true += 1;
                        } else {
                            decision.qualified = false;
                        }
                    }
                }
                Err(e) => {
                    // execerror: the statement yields no value; a logical
                    // statement is "considered a false statement", and any
                    // error leaves the server unqualified.
                    decision.errors.push(e);
                    decision.qualified = false;
                }
            }
        }
        decision
    }
}

fn eval_expr(
    expr: &Expr,
    provider: &dyn VarProvider,
    temps: &mut BTreeMap<String, f64>,
) -> Result<f64, EvalError> {
    match expr {
        Expr::Number(n) => Ok(*n),
        Expr::NetAddr(a) => Err(EvalError::NetAddrInExpr(a.clone())),
        Expr::Paren(inner) => eval_expr(inner, provider, temps),
        Expr::Neg(inner) => Ok(-eval_expr(inner, provider, temps)?),
        Expr::Var(name) => {
            if is_user_host_var(name) {
                return Err(EvalError::UserHostVarInExpr(name.clone()));
            }
            // Resolution order: temp vars shadow server vars shadow
            // constants; a name known nowhere is UNDEF.
            if let Some(v) = temps.get(name) {
                return Ok(*v);
            }
            if let Some(v) = provider.lookup(name) {
                return Ok(v);
            }
            if let Some(v) = constant(name) {
                return Ok(v);
            }
            Err(EvalError::Undefined(name.clone()))
        }
        Expr::Assign(name, rhs) => {
            if is_server_var(name) {
                return Err(EvalError::AssignToServerVar(name.clone()));
            }
            if is_user_host_var(name) {
                return Err(EvalError::UserHostVarInExpr(name.clone()));
            }
            let v = eval_expr(rhs, provider, temps)?;
            temps.insert(name.clone(), v);
            Ok(v)
        }
        Expr::Call(name, arg) => {
            let f = builtin_fn(name).ok_or_else(|| EvalError::UnknownFunction(name.clone()))?;
            Ok(f(eval_expr(arg, provider, temps)?))
        }
        Expr::Binary(op, lhs, rhs) => {
            let a = eval_expr(lhs, provider, temps)?;
            let b = eval_expr(rhs, provider, temps)?;
            let bool_to_f = |v: bool| if v { 1.0 } else { 0.0 };
            Ok(match op {
                BinOp::Or => bool_to_f(a != 0.0 || b != 0.0),
                BinOp::And => bool_to_f(a != 0.0 && b != 0.0),
                BinOp::Eq => bool_to_f(a == b),
                BinOp::Ne => bool_to_f(a != b),
                BinOp::Lt => bool_to_f(a < b),
                // Fig 4.2 spells these as disjunctions: ($1<$3)||($1==$3).
                BinOp::Le => bool_to_f(a <= b),
                BinOp::Gt => bool_to_f(a > b),
                BinOp::Ge => bool_to_f(a >= b),
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a / b
                }
                BinOp::Pow => a.powf(b),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn vars() -> MapVars {
        MapVars::new()
            .with("host_cpu_free", 0.95)
            .with("host_system_load1", 0.2)
            .with("host_memory_free", 200.0 * 1024.0 * 1024.0)
            .with("host_cpu_bogomips", 4771.02)
            .with("monitor_network_bw", 6.72)
    }

    fn check(src: &str, provider: &MapVars) -> Decision {
        Evaluator::evaluate(&compile(src).unwrap(), provider)
    }

    #[test]
    fn all_logical_statements_must_hold() {
        let v = vars();
        let d = check("host_cpu_free > 0.9\nhost_system_load1 < 1\n", &v);
        assert!(d.qualified);
        assert_eq!((d.statements_true, d.statements_total), (2, 2));

        let d = check("host_cpu_free > 0.9\nhost_system_load1 < 0.1\n", &v);
        assert!(!d.qualified);
        assert_eq!((d.statements_true, d.statements_total), (1, 2));
    }

    #[test]
    fn non_logical_statements_never_disqualify() {
        let v = vars();
        // `100 > 0` is trivially true; arithmetic lines are ignored for the
        // verdict even when their value is zero.
        let d = check("x = 0\nx * 5\n100 > 0\n", &v);
        assert!(d.qualified);
        assert_eq!(d.statements_total, 1);
    }

    #[test]
    fn temp_variables_thread_between_statements() {
        let v = vars();
        let d = check("limit = 0.5 + 0.5\nhost_system_load1 < limit\n", &v);
        assert!(d.qualified);
    }

    #[test]
    fn undefined_temp_in_logical_statement_is_false() {
        let v = vars();
        let d = check("host_cpu_free > never_defined\n", &v);
        assert!(!d.qualified);
        assert_eq!(d.errors, vec![EvalError::Undefined("never_defined".into())]);
    }

    #[test]
    fn division_by_zero_is_an_execerror() {
        let v = vars();
        let d = check("x = 1 / 0\n", &v);
        assert!(!d.qualified);
        assert_eq!(d.errors, vec![EvalError::DivisionByZero]);
    }

    #[test]
    fn papers_table_5_3_requirement() {
        // (host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) &&
        // (host_memory_free > 5MB)
        let src = "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && (host_memory_free > 5*1024*1024)\n";
        let fast = vars();
        assert!(check(src, &fast).qualified);
        let slow = MapVars::new()
            .with("host_cpu_bogomips", 1730.15)
            .with("host_cpu_free", 0.99)
            .with("host_memory_free", 100e6);
        assert!(!check(src, &slow).qualified);
    }

    #[test]
    fn papers_table_5_4_disjunctive_requirement() {
        // ((bogomips > 4000) || (bogomips < 2000)) && cpu_free > 0.9 ...
        let src =
            "((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && (host_cpu_free > 0.9)\n";
        let p3 = MapVars::new().with("host_cpu_bogomips", 1730.15).with("host_cpu_free", 0.95);
        let p4_24 = MapVars::new().with("host_cpu_bogomips", 4771.02).with("host_cpu_free", 0.95);
        let p4_17 = MapVars::new().with("host_cpu_bogomips", 3394.76).with("host_cpu_free", 0.95);
        assert!(Evaluator::evaluate(&compile(src).unwrap(), &p3).qualified);
        assert!(Evaluator::evaluate(&compile(src).unwrap(), &p4_24).qualified);
        assert!(!Evaluator::evaluate(&compile(src).unwrap(), &p4_17).qualified);
    }

    #[test]
    fn builtins_and_constants_work_in_requirements() {
        let v = vars();
        assert!(check("log10(100) == 2\n", &v).qualified);
        assert!(check("sqrt(16) == 4\n", &v).qualified);
        assert!(check("PI > 3.14 && PI < 3.15\n", &v).qualified);
        assert!(check("exp(0) == 1\n", &v).qualified);
        let d = check("frob(1) > 0\n", &v);
        assert!(!d.qualified);
        assert_eq!(d.errors, vec![EvalError::UnknownFunction("frob".into())]);
    }

    #[test]
    fn meaningless_tautology_qualifies_everything() {
        // The paper warns: "A meaningless statement like 100 > 0 will make
        // any server as a qualified candidate."
        let empty = MapVars::new();
        assert!(check("100 > 0\n", &empty).qualified);
    }

    #[test]
    fn server_vars_are_read_only() {
        let v = vars();
        let d = check("host_cpu_free = 1\n", &v);
        assert!(!d.qualified);
        assert_eq!(d.errors, vec![EvalError::AssignToServerVar("host_cpu_free".into())]);
    }

    #[test]
    fn netaddr_in_numeric_position_is_an_error() {
        let v = vars();
        let d = check("x = 137.132.90.182 + 1\n", &v);
        assert!(!d.qualified);
        assert!(matches!(d.errors[0], EvalError::NetAddrInExpr(_)));
    }

    #[test]
    fn host_lists_are_extracted_in_order() {
        let req = compile(
            "user_denied_host1 = telesto\nuser_denied_host2 = mimas\nuser_preferred_host1 = sagit.comp.nus.edu.sg\nhost_cpu_free > 0.5\n",
        )
        .unwrap();
        let lists = HostLists::from_requirement(&req);
        assert_eq!(lists.denied, vec!["telesto".to_owned(), "mimas".to_owned()]);
        assert_eq!(lists.preferred, vec!["sagit.comp.nus.edu.sg".to_owned()]);
        // Host assignments are invisible to per-server evaluation.
        let d = Evaluator::evaluate(&req, &vars());
        assert_eq!(d.statements_total, 1);
        assert!(d.qualified);
    }

    #[test]
    fn empty_requirement_qualifies_like_the_random_baseline() {
        let d = Evaluator::evaluate(&Requirement::empty(), &MapVars::new());
        assert!(d.qualified);
        assert_eq!(d.statements_total, 0);
    }

    #[test]
    fn and_or_operate_on_truthiness_of_numbers() {
        let v = MapVars::new();
        assert!(check("2 && 3\n", &v).qualified);
        assert!(!check("0 && 3\n", &v).qualified);
        assert!(check("0 || 0.5\n", &v).qualified);
        assert!(!check("0 || 0\n", &v).qualified);
    }

    #[test]
    fn le_ge_match_fig_4_2_disjunction_spelling() {
        let v = MapVars::new();
        assert!(check("1 <= 1\n", &v).qualified);
        assert!(check("1 >= 1\n", &v).qualified);
        assert!(check("0.999 <= 1\n", &v).qualified);
        assert!(!check("1.001 <= 1\n", &v).qualified);
    }
}
