//! Wire-format goldens: committed fixtures pinning the exact bytes of the
//! three protocol frames both backends (sim and live) put on the wire.
//!
//! * `goldens/report.ascii.txt` — the probe → monitor ASCII status line;
//! * `goldens/report.binary.hex` — the 204-byte transmitter → receiver record;
//! * `goldens/user_request.hex` — the client → wizard request frame;
//! * `goldens/wizard_reply.hex` — the wizard → client reply frame.
//!
//! If an encoding changes these tests fail with a byte-level diff; that is
//! a wire-compatibility break and must be deliberate. To re-pin after an
//! intentional change run:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p smartsock-proto --test goldens
//! ```

use smartsock_proto::consts::{ports, sizes};
use smartsock_proto::{
    Endpoint, Ip, RequestOption, ServerStatusReport, ServiceMask, UserRequest, WizardReply,
};

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2 + bytes.len() / 16);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            out.push('\n');
        }
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
    out
}

fn unhex(text: &str) -> Vec<u8> {
    let compact: String = text.chars().filter(|c| c.is_ascii_hexdigit()).collect();
    assert!(compact.len() % 2 == 0, "odd hex digit count in fixture");
    (0..compact.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&compact[i..i + 2], 16).expect("fixture is hex"))
        .collect()
}

/// Compare against a committed fixture, or rewrite it when
/// `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/goldens/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} (run with UPDATE_GOLDENS=1): {e}"));
    assert_eq!(
        actual, expected,
        "wire format drifted from the committed golden {name}; \
         if intentional, re-pin with UPDATE_GOLDENS=1"
    );
}

/// The canonical report every fixture derives from: all field groups
/// non-default so a layout change in any of them moves bytes.
fn golden_report() -> ServerStatusReport {
    let mut r = ServerStatusReport::empty("helene", Ip::new(192, 168, 3, 10));
    r.timestamp_ns = 2_000_000_000;
    r.load1 = 0.25;
    r.load5 = 0.20;
    r.load15 = 0.15;
    r.cpu_user = 0.02;
    r.cpu_nice = 0.001;
    r.cpu_system = 0.019;
    r.cpu_idle = 0.96;
    r.bogomips = 3394.76;
    r.mem_total = 256 << 20;
    r.mem_used = 56 << 20;
    r.mem_free = 200 << 20;
    r.mem_buffers = 17 << 20;
    r.mem_cached = 79 << 20;
    r.disk_allreq = 1500;
    r.disk_rreq = 600;
    r.disk_rblocks = 4800;
    r.disk_wreq = 900;
    r.disk_wblocks = 7200;
    r.iface = "eth0".to_owned();
    r.net_rbytes_ps = 18500.5;
    r.net_rpackets_ps = 120.2;
    r.net_tbytes_ps = 9600.1;
    r.net_tpackets_ps = 88.8;
    r.services = ServiceMask::NONE;
    r
}

fn golden_request() -> UserRequest {
    UserRequest {
        seq: 0x5eed_cafe,
        server_num: 4,
        option: RequestOption { accept_fewer: true, template: Some(2) },
        detail: "host_cpu_free > 0.9\nhost_memory_free > 100*1024*1024\n".to_owned(),
    }
}

fn golden_reply() -> WizardReply {
    WizardReply {
        seq: 0x5eed_cafe,
        servers: vec![
            Endpoint::new(Ip::new(192, 168, 3, 10), ports::SERVICE),
            Endpoint::new(Ip::new(192, 168, 3, 11), ports::SERVICE),
            Endpoint::new(Ip::new(10, 0, 9, 7), ports::SERVICE),
        ],
    }
}

#[test]
fn report_ascii_frame_matches_golden() {
    let line = golden_report().encode_ascii();
    assert!(line.len() < 200, "the paper's 200-byte report bound");
    check_golden("report.ascii.txt", &format!("{line}\n"));
    // The committed line is canonical: parsing and re-encoding reproduces it.
    let back = ServerStatusReport::parse_ascii(&line).unwrap();
    assert_eq!(back.encode_ascii(), line);
}

#[test]
fn report_binary_record_matches_golden() {
    let mut buf = Vec::new();
    golden_report().encode_binary(&mut buf);
    assert_eq!(buf.len(), sizes::BINARY_STATUS_RECORD_BYTES, "fixed 204-byte record");
    check_golden("report.binary.hex", &hex(&buf));
    // Canonical: the committed bytes decode and re-encode to themselves.
    let fixture = unhex(&hex(&buf));
    let decoded = ServerStatusReport::decode_binary(&mut fixture.as_slice()).unwrap();
    let mut again = Vec::new();
    decoded.encode_binary(&mut again);
    assert_eq!(again, fixture);
}

#[test]
fn user_request_frame_matches_golden() {
    let req = golden_request();
    let wire = req.encode();
    check_golden("user_request.hex", &hex(&wire));
    assert_eq!(UserRequest::decode(&wire).unwrap(), req, "frame round-trips to the same request");
}

#[test]
fn wizard_reply_frame_matches_golden() {
    let reply = golden_reply();
    let wire = reply.encode();
    check_golden("wizard_reply.hex", &hex(&wire));
    assert_eq!(WizardReply::decode(&wire).unwrap(), reply, "frame round-trips to the same reply");
}
