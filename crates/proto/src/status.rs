//! The server status report (paper §3.2.1, Table 3.1).
//!
//! A probe scans `/proc/loadavg`, `/proc/stat`, `/proc/meminfo` and
//! `/proc/net/dev`, then sends the extracted numbers to the system monitor.
//! Two encodings exist, both from the paper:
//!
//! * **ASCII** (probe → system monitor, UDP): numbers as decimal strings so
//!   probes "can run on both machines with Big Endian and Little Endian
//!   without any modification". The message must stay under 200 bytes.
//! * **Binary** (transmitter → receiver, TCP): a fixed 204-byte packed
//!   record (§5.2: "a server status structure, which is 204 bytes long").
//!   The paper ships raw structs and warns both ends must share endianness;
//!   we instead pin an explicit little-endian layout, which preserves the
//!   efficiency rationale while removing the portability hazard.

use bytes::{Buf, BufMut};

use crate::addr::{HostName, Ip};
use crate::consts::sizes::BINARY_STATUS_RECORD_BYTES;
use crate::services::ServiceMask;
use crate::ProtoError;

/// One server's resource snapshot, the unit record of the system-status
/// database (`sysdb` in Fig 3.10).
#[derive(Clone, Debug, PartialEq)]
pub struct ServerStatusReport {
    /// Unqualified host name (≤ 23 bytes in the binary encoding).
    pub host: HostName,
    /// Address application sockets will connect to.
    pub ip: Ip,
    /// Probe-side timestamp in nanoseconds of virtual time. Zero in the
    /// ASCII encoding (the monitor stamps receipt); carried in the binary
    /// record so the wizard can judge staleness.
    pub timestamp_ns: u64,
    /// System load averages over 1, 5 and 15 minutes (`/proc/loadavg`).
    pub load1: f64,
    pub load5: f64,
    pub load15: f64,
    /// CPU time fractions since the previous scan (`/proc/stat`); the four
    /// fields sum to ≈ 1.
    pub cpu_user: f64,
    pub cpu_nice: f64,
    pub cpu_system: f64,
    pub cpu_idle: f64,
    /// BogoMIPS as printed by the kernel at boot; the requirement language
    /// exposes it as `host_cpu_bogomips` (used in Tables 5.3/5.4).
    pub bogomips: f64,
    /// Memory occupancy in bytes (`/proc/meminfo`).
    pub mem_total: u64,
    pub mem_used: u64,
    pub mem_free: u64,
    pub mem_buffers: u64,
    pub mem_cached: u64,
    /// Disk request/block counters accumulated since the previous scan
    /// (`disk_io` of `/proc/stat`).
    pub disk_allreq: u64,
    pub disk_rreq: u64,
    pub disk_rblocks: u64,
    pub disk_wreq: u64,
    pub disk_wblocks: u64,
    /// Primary network interface name (`/proc/net/dev`).
    pub iface: String,
    /// Interface throughput in bytes and packets per second, averaged over
    /// the scan interval.
    pub net_rbytes_ps: f64,
    pub net_rpackets_ps: f64,
    pub net_tbytes_ps: f64,
    pub net_tpackets_ps: f64,
    /// Services this host advertises (§6 extension; `ServiceMask::NONE`
    /// on hosts that predate the extension).
    pub services: ServiceMask,
}

impl ServerStatusReport {
    /// A zeroed report for `host`/`ip`, useful as a builder base.
    pub fn empty(host: impl Into<HostName>, ip: Ip) -> Self {
        ServerStatusReport {
            host: host.into(),
            ip,
            timestamp_ns: 0,
            load1: 0.0,
            load5: 0.0,
            load15: 0.0,
            cpu_user: 0.0,
            cpu_nice: 0.0,
            cpu_system: 0.0,
            cpu_idle: 1.0,
            bogomips: 0.0,
            mem_total: 0,
            mem_used: 0,
            mem_free: 0,
            mem_buffers: 0,
            mem_cached: 0,
            disk_allreq: 0,
            disk_rreq: 0,
            disk_rblocks: 0,
            disk_wreq: 0,
            disk_wblocks: 0,
            iface: "eth0".to_owned(),
            net_rbytes_ps: 0.0,
            net_rpackets_ps: 0.0,
            net_tbytes_ps: 0.0,
            net_tpackets_ps: 0.0,
            services: ServiceMask::NONE,
        }
    }

    /// Free CPU fraction — the requirement variable `host_cpu_free`.
    pub fn cpu_free(&self) -> f64 {
        self.cpu_idle
    }

    /// Free memory including reclaimable buffers/cache, in bytes.
    pub fn mem_available(&self) -> u64 {
        self.mem_free + self.mem_buffers + self.mem_cached
    }

    // ------------------------------------------------------------------
    // ASCII encoding (probe → system monitor)
    // ------------------------------------------------------------------

    /// Magic token opening every ASCII report.
    pub const ASCII_MAGIC: &'static str = "SSR1";

    /// Encode as the positional ASCII line sent over UDP.
    ///
    /// Field order is fixed; floats carry just enough precision for the
    /// requirement language, keeping the whole message under the paper's
    /// 200-byte bound for realistic values.
    ///
    /// # Example
    ///
    /// ```
    /// use smartsock_proto::{Ip, ServerStatusReport};
    ///
    /// let mut report = ServerStatusReport::empty("helene", Ip::new(192, 168, 3, 10));
    /// report.load1 = 0.25;
    /// let line = report.encode_ascii();
    /// assert!(line.len() < 200, "the paper's size bound");
    /// let back = ServerStatusReport::parse_ascii(&line).unwrap();
    /// assert_eq!(back.host.as_str(), "helene");
    /// assert_eq!(back.load1, 0.25);
    /// ```
    pub fn encode_ascii(&self) -> String {
        format!(
            "{magic} {host} {ip} {l1:.2} {l5:.2} {l15:.2} \
             {cu:.3} {cn:.3} {cs:.3} {ci:.3} {bm:.2} \
             {mt} {mu} {mf} {mb} {mc} \
             {da} {dr} {drb} {dw} {dwb} \
             {ifc} {nrb:.1} {nrp:.1} {ntb:.1} {ntp:.1} {svc}",
            magic = Self::ASCII_MAGIC,
            host = self.host,
            ip = self.ip,
            l1 = self.load1,
            l5 = self.load5,
            l15 = self.load15,
            cu = self.cpu_user,
            cn = self.cpu_nice,
            cs = self.cpu_system,
            ci = self.cpu_idle,
            bm = self.bogomips,
            mt = self.mem_total,
            mu = self.mem_used,
            mf = self.mem_free,
            mb = self.mem_buffers,
            mc = self.mem_cached,
            da = self.disk_allreq,
            dr = self.disk_rreq,
            drb = self.disk_rblocks,
            dw = self.disk_wreq,
            dwb = self.disk_wblocks,
            ifc = self.iface,
            nrb = self.net_rbytes_ps,
            nrp = self.net_rpackets_ps,
            ntb = self.net_tbytes_ps,
            ntp = self.net_tpackets_ps,
            svc = self.services.0,
        )
    }

    /// Parse the positional ASCII line.
    pub fn parse_ascii(text: &str) -> Result<Self, ProtoError> {
        let mut it = text.split_ascii_whitespace();
        let magic = it.next().unwrap_or("");
        if magic != Self::ASCII_MAGIC {
            return Err(ProtoError::Malformed(format!("bad magic {magic:?}")));
        }
        fn take<'a>(
            it: &mut impl Iterator<Item = &'a str>,
            field: &'static str,
        ) -> Result<&'a str, ProtoError> {
            it.next().ok_or(ProtoError::BadField { field, text: "<missing>".into() })
        }
        fn f64_of(s: &str, field: &'static str) -> Result<f64, ProtoError> {
            s.parse().map_err(|_| ProtoError::BadField { field, text: s.into() })
        }
        fn u64_of(s: &str, field: &'static str) -> Result<u64, ProtoError> {
            s.parse().map_err(|_| ProtoError::BadField { field, text: s.into() })
        }

        let host = HostName::new(take(&mut it, "host")?);
        let ip: Ip = take(&mut it, "ip")?.parse()?;
        let mut r = ServerStatusReport::empty(host, ip);
        r.load1 = f64_of(take(&mut it, "load1")?, "load1")?;
        r.load5 = f64_of(take(&mut it, "load5")?, "load5")?;
        r.load15 = f64_of(take(&mut it, "load15")?, "load15")?;
        r.cpu_user = f64_of(take(&mut it, "cpu_user")?, "cpu_user")?;
        r.cpu_nice = f64_of(take(&mut it, "cpu_nice")?, "cpu_nice")?;
        r.cpu_system = f64_of(take(&mut it, "cpu_system")?, "cpu_system")?;
        r.cpu_idle = f64_of(take(&mut it, "cpu_idle")?, "cpu_idle")?;
        r.bogomips = f64_of(take(&mut it, "bogomips")?, "bogomips")?;
        r.mem_total = u64_of(take(&mut it, "mem_total")?, "mem_total")?;
        r.mem_used = u64_of(take(&mut it, "mem_used")?, "mem_used")?;
        r.mem_free = u64_of(take(&mut it, "mem_free")?, "mem_free")?;
        r.mem_buffers = u64_of(take(&mut it, "mem_buffers")?, "mem_buffers")?;
        r.mem_cached = u64_of(take(&mut it, "mem_cached")?, "mem_cached")?;
        r.disk_allreq = u64_of(take(&mut it, "disk_allreq")?, "disk_allreq")?;
        r.disk_rreq = u64_of(take(&mut it, "disk_rreq")?, "disk_rreq")?;
        r.disk_rblocks = u64_of(take(&mut it, "disk_rblocks")?, "disk_rblocks")?;
        r.disk_wreq = u64_of(take(&mut it, "disk_wreq")?, "disk_wreq")?;
        r.disk_wblocks = u64_of(take(&mut it, "disk_wblocks")?, "disk_wblocks")?;
        r.iface = take(&mut it, "iface")?.to_owned();
        r.net_rbytes_ps = f64_of(take(&mut it, "net_rbytes_ps")?, "net_rbytes_ps")?;
        r.net_rpackets_ps = f64_of(take(&mut it, "net_rpackets_ps")?, "net_rpackets_ps")?;
        r.net_tbytes_ps = f64_of(take(&mut it, "net_tbytes_ps")?, "net_tbytes_ps")?;
        r.net_tpackets_ps = f64_of(take(&mut it, "net_tpackets_ps")?, "net_tpackets_ps")?;
        // §6 service extension: present on new probes, absent on old ones.
        if let Some(tok) = it.next() {
            let mask: u32 = tok
                .parse()
                .map_err(|_| ProtoError::BadField { field: "services", text: tok.into() })?;
            r.services = ServiceMask(mask);
        }
        if it.next().is_some() {
            return Err(ProtoError::Malformed("trailing fields".into()));
        }
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Binary encoding (transmitter → receiver)
    // ------------------------------------------------------------------

    const HOST_FIELD: usize = 24;
    const IFACE_FIELD: usize = 8;

    /// Encode as the fixed-size 204-byte little-endian record.
    ///
    /// Layout (offsets in bytes):
    /// `host[24] ip[4] timestamp[8] loads[3×f32] cpu[4×f32] bogomips[f32]
    /// mem[5×u64] disk[5×u64] net[4×f32] iface[8] reserved[32]`.
    pub fn encode_binary(&self, out: &mut impl BufMut) {
        let mut host = [0u8; Self::HOST_FIELD];
        copy_truncated(&mut host, self.host.as_str().as_bytes());
        out.put_slice(&host);
        out.put_u32_le(self.ip.0);
        out.put_u64_le(self.timestamp_ns);
        for v in [self.load1, self.load5, self.load15] {
            out.put_f32_le(v as f32);
        }
        for v in [self.cpu_user, self.cpu_nice, self.cpu_system, self.cpu_idle] {
            out.put_f32_le(v as f32);
        }
        out.put_f32_le(self.bogomips as f32);
        for v in [self.mem_total, self.mem_used, self.mem_free, self.mem_buffers, self.mem_cached] {
            out.put_u64_le(v);
        }
        for v in
            [self.disk_allreq, self.disk_rreq, self.disk_rblocks, self.disk_wreq, self.disk_wblocks]
        {
            out.put_u64_le(v);
        }
        for v in
            [self.net_rbytes_ps, self.net_rpackets_ps, self.net_tbytes_ps, self.net_tpackets_ps]
        {
            out.put_f32_le(v as f32);
        }
        let mut iface = [0u8; Self::IFACE_FIELD];
        copy_truncated(&mut iface, self.iface.as_bytes());
        out.put_slice(&iface);
        out.put_u32_le(self.services.0); // §6 service extension
        out.put_slice(&[0u8; 28]); // reserved
    }

    /// Decode one 204-byte record, consuming it from `buf`.
    pub fn decode_binary(buf: &mut impl Buf) -> Result<Self, ProtoError> {
        if buf.remaining() < BINARY_STATUS_RECORD_BYTES {
            return Err(ProtoError::Truncated {
                expected: BINARY_STATUS_RECORD_BYTES,
                got: buf.remaining(),
            });
        }
        let mut host = [0u8; Self::HOST_FIELD];
        buf.copy_to_slice(&mut host);
        let host = HostName::new(cstr_of(&host));
        let ip = Ip(buf.get_u32_le());
        let mut r = ServerStatusReport::empty(host, ip);
        r.timestamp_ns = buf.get_u64_le();
        r.load1 = buf.get_f32_le() as f64;
        r.load5 = buf.get_f32_le() as f64;
        r.load15 = buf.get_f32_le() as f64;
        r.cpu_user = buf.get_f32_le() as f64;
        r.cpu_nice = buf.get_f32_le() as f64;
        r.cpu_system = buf.get_f32_le() as f64;
        r.cpu_idle = buf.get_f32_le() as f64;
        r.bogomips = buf.get_f32_le() as f64;
        r.mem_total = buf.get_u64_le();
        r.mem_used = buf.get_u64_le();
        r.mem_free = buf.get_u64_le();
        r.mem_buffers = buf.get_u64_le();
        r.mem_cached = buf.get_u64_le();
        r.disk_allreq = buf.get_u64_le();
        r.disk_rreq = buf.get_u64_le();
        r.disk_rblocks = buf.get_u64_le();
        r.disk_wreq = buf.get_u64_le();
        r.disk_wblocks = buf.get_u64_le();
        r.net_rbytes_ps = buf.get_f32_le() as f64;
        r.net_rpackets_ps = buf.get_f32_le() as f64;
        r.net_tbytes_ps = buf.get_f32_le() as f64;
        r.net_tpackets_ps = buf.get_f32_le() as f64;
        let mut iface = [0u8; Self::IFACE_FIELD];
        buf.copy_to_slice(&mut iface);
        r.iface = cstr_of(&iface);
        r.services = ServiceMask(buf.get_u32_le());
        buf.advance(28); // reserved
        Ok(r)
    }
}

fn copy_truncated(dst: &mut [u8], src: &[u8]) {
    let n = src.len().min(dst.len().saturating_sub(1)); // keep a trailing NUL
    dst[..n].copy_from_slice(&src[..n]);
}

fn cstr_of(bytes: &[u8]) -> String {
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> ServerStatusReport {
        let mut r = ServerStatusReport::empty("pandora-x", Ip::new(192, 168, 4, 2));
        r.timestamp_ns = 123_456_789;
        r.load1 = 0.12;
        r.load5 = 0.34;
        r.load15 = 0.56;
        r.cpu_user = 0.02;
        r.cpu_nice = 0.0;
        r.cpu_system = 0.01;
        r.cpu_idle = 0.97;
        r.bogomips = 3591.37;
        r.mem_total = 268_435_456;
        r.mem_used = 121_085_952;
        r.mem_free = 141_127_680;
        r.mem_buffers = 18_284_544;
        r.mem_cached = 82_911_232;
        r.disk_allreq = 1234;
        r.disk_rreq = 100;
        r.disk_rblocks = 800;
        r.disk_wreq = 50;
        r.disk_wblocks = 400;
        r.net_rbytes_ps = 1024.0;
        r.net_rpackets_ps = 10.0;
        r.net_tbytes_ps = 204_800.5;
        r.net_tpackets_ps = 120.0;
        r.services = ServiceMask::COMPUTE | ServiceMask::FILE;
        r
    }

    #[test]
    fn ascii_roundtrip_preserves_fields() {
        let r = sample();
        let line = r.encode_ascii();
        let back = ServerStatusReport::parse_ascii(&line).unwrap();
        assert_eq!(back.host, r.host);
        assert_eq!(back.ip, r.ip);
        assert_eq!(back.mem_total, r.mem_total);
        assert_eq!(back.disk_wblocks, r.disk_wblocks);
        assert!((back.load1 - r.load1).abs() < 0.005);
        assert!((back.cpu_idle - r.cpu_idle).abs() < 0.0005);
        assert!((back.net_tbytes_ps - r.net_tbytes_ps).abs() < 0.05);
        assert_eq!(back.services, r.services);
        // ASCII encoding intentionally drops the timestamp.
        assert_eq!(back.timestamp_ns, 0);
    }

    #[test]
    fn ascii_report_is_under_200_bytes_as_the_paper_states() {
        // §3.2.1: "The server status report message is less than 200 bytes".
        let mut r = sample();
        // Exercise a worst case: huge counters, long-ish host name.
        r.host = "dalmatian".into();
        r.mem_total = 536_870_912;
        r.mem_used = 536_870_912;
        r.mem_free = 536_870_912;
        r.mem_buffers = 536_870_912;
        r.mem_cached = 536_870_912;
        r.disk_allreq = 99_999_999;
        r.disk_rblocks = 99_999_999;
        r.disk_wblocks = 99_999_999;
        r.net_tbytes_ps = 12_500_000.0;
        r.net_rbytes_ps = 12_500_000.0;
        let len = r.encode_ascii().len();
        assert!(
            len < crate::consts::sizes::MAX_STATUS_REPORT_BYTES,
            "report too long: {len} bytes"
        );
    }

    #[test]
    fn ascii_rejects_bad_magic_and_truncation() {
        assert!(ServerStatusReport::parse_ascii("XXX 1 2 3").is_err());
        let line = sample().encode_ascii();
        let cut: String = line.split_ascii_whitespace().take(5).collect::<Vec<_>>().join(" ");
        assert!(ServerStatusReport::parse_ascii(&cut).is_err());
        let extended = format!("{line} 99");
        assert!(ServerStatusReport::parse_ascii(&extended).is_err(), "extra field after the mask");
        let bad_mask_line = line.rsplit_once(' ').unwrap().0;
        let bad = format!("{bad_mask_line} notamask");
        assert!(ServerStatusReport::parse_ascii(&bad).is_err());
    }

    #[test]
    fn binary_record_is_exactly_204_bytes() {
        // §5.2: the parsed server status structure is 204 bytes long.
        let mut buf = BytesMut::new();
        sample().encode_binary(&mut buf);
        assert_eq!(buf.len(), BINARY_STATUS_RECORD_BYTES);
    }

    #[test]
    fn binary_roundtrip_preserves_fields() {
        let r = sample();
        let mut buf = BytesMut::new();
        r.encode_binary(&mut buf);
        let back = ServerStatusReport::decode_binary(&mut buf).unwrap();
        assert_eq!(back.host, r.host);
        assert_eq!(back.ip, r.ip);
        assert_eq!(back.timestamp_ns, r.timestamp_ns);
        assert_eq!(back.mem_total, r.mem_total);
        assert_eq!(back.disk_rblocks, r.disk_rblocks);
        assert_eq!(back.iface, r.iface);
        assert_eq!(back.services, r.services);
        assert!((back.bogomips - r.bogomips).abs() < 0.01);
        assert!((back.cpu_idle - r.cpu_idle).abs() < 1e-6);
    }

    #[test]
    fn binary_decode_rejects_short_buffers() {
        let mut buf = BytesMut::new();
        sample().encode_binary(&mut buf);
        let mut short = buf.split_to(100);
        assert_eq!(
            ServerStatusReport::decode_binary(&mut short),
            Err(ProtoError::Truncated { expected: 204, got: 100 })
        );
    }

    #[test]
    fn long_host_names_are_truncated_not_corrupted() {
        let mut r = sample();
        r.host = "a-very-long-host-name-that-exceeds-the-field".into();
        let mut buf = BytesMut::new();
        r.encode_binary(&mut buf);
        let back = ServerStatusReport::decode_binary(&mut buf).unwrap();
        assert_eq!(back.host.as_str(), &r.host.as_str()[..23]);
    }

    #[test]
    fn mem_available_sums_reclaimable() {
        let r = sample();
        assert_eq!(r.mem_available(), r.mem_free + r.mem_buffers + r.mem_cached);
    }
}
