//! Addressing: IPv4-style host addresses, hostnames and endpoints.
//!
//! The requirement language lets users write either dotted-quad addresses
//! (`137.132.90.182`) or domain names (`sagit.ddns.comp.nus.edu.sg`) for the
//! preferred/denied host lists (§3.6.1, lexical class `NETADDR`). The
//! simulated testbed keeps a name↔address registry, so both spellings
//! resolve to the same server.

use std::fmt;
use std::str::FromStr;

use crate::ProtoError;

/// An IPv4 address in the simulated internet, stored big-endian-logically
/// (the first octet is the most significant byte).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip(pub u32);

impl Ip {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ip {
        // analyze: allow(SS-PROTO-003): dotted-quad value ordering (the definition of an IPv4 address), not wire-frame layout — frames carry the u32 as _le
        Ip(u32::from_be_bytes([a, b, c, d]))
    }

    /// The loopback address `127.0.0.1`.
    pub const LOOPBACK: Ip = Ip::new(127, 0, 0, 1);

    pub fn octets(self) -> [u8; 4] {
        // analyze: allow(SS-PROTO-003): inverse of `new` — recovers display octets, not bytes on the wire
        self.0.to_be_bytes()
    }

    /// True if this address is in `127.0.0.0/8`.
    pub fn is_loopback(self) -> bool {
        self.octets()[0] == 127
    }

    /// The /24 network prefix, used to group hosts into the paper's network
    /// segments (Fig 5.1 places machines in 192.168.1.0/24 ... .5.0/24).
    pub fn net24(self) -> Ip {
        Ip(self.0 & 0xffff_ff00)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ip {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ProtoError::BadField { field: "ip", text: s.to_owned() };
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in &mut octets {
            let p = parts.next().ok_or_else(bad)?;
            // Reject empty and non-digit segments explicitly; `parse::<u8>`
            // would also reject them but with less precise intent.
            if p.is_empty() || !p.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            *o = p.parse().map_err(|_| bad())?;
        }
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(Ip::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// A (host, port) pair — the address of one simulated socket.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    pub ip: Ip,
    pub port: u16,
}

impl Endpoint {
    pub const fn new(ip: Ip, port: u16) -> Endpoint {
        Endpoint { ip, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Endpoint {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, port) = s
            .split_once(':')
            .ok_or_else(|| ProtoError::BadField { field: "endpoint", text: s.to_owned() })?;
        Ok(Endpoint {
            ip: ip.parse()?,
            port: port
                .parse()
                .map_err(|_| ProtoError::BadField { field: "port", text: port.to_owned() })?,
        })
    }
}

/// A symbolic host name, as written in requirement files.
///
/// Host names in the testbed mirror the paper's machines (`sagit`,
/// `dalmatian`, `mimas`, ...). Comparison is case-insensitive, matching
/// common DNS behaviour.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostName(String);

impl HostName {
    pub fn new(name: impl Into<String>) -> HostName {
        HostName(name.into().to_ascii_lowercase())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The unqualified leading label (`sagit` of `sagit.comp.nus.edu.sg`).
    pub fn short(&self) -> &str {
        self.0.split('.').next().unwrap_or(&self.0)
    }

    /// True when `other` names the same machine: equal fully-qualified
    /// names, or one side is the unqualified form of the other.
    pub fn matches(&self, other: &HostName) -> bool {
        self == other || self.short() == other.short()
    }
}

impl fmt::Display for HostName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for HostName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&str> for HostName {
    fn from(s: &str) -> Self {
        HostName::new(s)
    }
}

/// Either spelling of a network address in the requirement language.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NetAddr {
    Ip(Ip),
    Name(HostName),
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddr::Ip(ip) => write!(f, "{ip}"),
            NetAddr::Name(n) => write!(f, "{n}"),
        }
    }
}

impl FromStr for NetAddr {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Ok(ip) = s.parse::<Ip>() {
            return Ok(NetAddr::Ip(ip));
        }
        if s.is_empty()
            || !s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'_')
        {
            return Err(ProtoError::BadField { field: "netaddr", text: s.to_owned() });
        }
        Ok(NetAddr::Name(HostName::new(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_display_parse_roundtrip() {
        let ip = Ip::new(137, 132, 90, 182);
        assert_eq!(ip.to_string(), "137.132.90.182");
        assert_eq!("137.132.90.182".parse::<Ip>().unwrap(), ip);
    }

    #[test]
    fn ip_rejects_malformed_text() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "1.2.3.x", "300.1.1.1", "1..2.3", "1.2.3.4 "] {
            assert!(bad.parse::<Ip>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn loopback_and_net24() {
        assert!(Ip::LOOPBACK.is_loopback());
        assert!(!Ip::new(192, 168, 1, 9).is_loopback());
        assert_eq!(Ip::new(192, 168, 1, 9).net24(), Ip::new(192, 168, 1, 0));
    }

    #[test]
    fn endpoint_roundtrip() {
        let e = Endpoint::new(Ip::new(192, 168, 1, 2), 1120);
        assert_eq!(e.to_string(), "192.168.1.2:1120");
        assert_eq!("192.168.1.2:1120".parse::<Endpoint>().unwrap(), e);
        assert!("192.168.1.2".parse::<Endpoint>().is_err());
        assert!("192.168.1.2:http".parse::<Endpoint>().is_err());
    }

    #[test]
    fn hostname_matching_is_case_insensitive_and_label_aware() {
        let full: HostName = "Sagit.ddns.comp.nus.edu.sg".into();
        let short: HostName = "sagit".into();
        assert_eq!(full.short(), "sagit");
        assert!(full.matches(&short));
        assert!(short.matches(&full));
        assert!(!short.matches(&"mimas".into()));
    }

    #[test]
    fn netaddr_distinguishes_ips_and_names() {
        assert_eq!("10.0.0.1".parse::<NetAddr>().unwrap(), NetAddr::Ip(Ip::new(10, 0, 0, 1)));
        assert_eq!(
            "sagit.comp.nus.edu.sg".parse::<NetAddr>().unwrap(),
            NetAddr::Name("sagit.comp.nus.edu.sg".into())
        );
        assert!("not a host!".parse::<NetAddr>().is_err());
    }
}
