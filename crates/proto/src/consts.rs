//! Deployment constants fixed by the paper.
//!
//! Table 4.2 assigns the service ports of every daemon and Table 4.3 the
//! System-V IPC keys for the shared-memory status databases. The simulation
//! keeps both verbatim: ports address simulated sockets, and the IPC keys
//! identify the in-process status databases that stand in for SysV shared
//! memory segments.

/// Ports used by monitors and wizard (paper Table 4.2).
pub mod ports {
    /// System monitor — receives probe reports (UDP).
    pub const MON_SYS: u16 = 1111;
    /// Network monitor — peer probing service (UDP).
    pub const MON_NET: u16 = 1112;
    /// Security monitor service port.
    pub const MON_SEC: u16 = 1113;
    /// Transmitter passive-mode listening port (distributed mode, TCP).
    pub const TRANSMITTER: u16 = 1110;
    /// Receiver listening port on the wizard machine (TCP).
    pub const RECEIVER: u16 = 1121;
    /// Wizard user-request service port (UDP).
    pub const WIZARD: u16 = 1120;
    /// Wizard health-feedback port (UDP): client outcome reports feeding
    /// the health-score table (not in the thesis; DESIGN.md §11).
    pub const WIZARD_HEALTH: u16 = 1122;
    /// Port on which computation/file servers accept application
    /// connections (the paper's "service port" of §3.6.2 step 4; not pinned
    /// by the thesis, chosen here).
    pub const SERVICE: u16 = 1200;
    /// Closed port targeted by RTT/bandwidth probes so the destination
    /// kernel answers with ICMP port-unreachable (§3.3.2).
    pub const UDP_PROBE_CLOSED: u16 = 33434;
}

/// System-V IPC keys for semaphores and shared-memory regions
/// (paper Table 4.3). The same key addresses both the semaphore and the
/// memory region of one record type.
pub mod ipc_keys {
    /// Monitor machine: system status region.
    pub const MON_SYSTEM: u32 = 1234;
    /// Monitor machine: network status region.
    pub const MON_NETWORK: u32 = 1235;
    /// Monitor machine: security status region.
    pub const MON_SECURITY: u32 = 1236;
    /// Wizard machine: system status region.
    pub const WIZ_SYSTEM: u32 = 4321;
    /// Wizard machine: network status region.
    pub const WIZ_NETWORK: u32 = 5321;
    /// Wizard machine: security status region.
    pub const WIZ_SECURITY: u32 = 6321;
}

/// Timing defaults from §3.2, §4.1 and §5.2.
pub mod timing {
    /// Default probe reporting interval in seconds (§5.2 uses 2 s; §4.1
    /// mentions 10 s; §3.2.2 says "normally 5 to 10 seconds"). Experiments
    /// override per scenario; this default matches the resource-usage
    /// measurements of Table 5.2.
    pub const PROBE_INTERVAL_SECS: u64 = 2;
    /// A server is declared failed after this many consecutive missed
    /// reports (§4.1).
    pub const FAILURE_INTERVALS: u32 = 3;
    /// Default network-monitor probing period in seconds (§5.2: "one probe
    /// is done after every two seconds").
    pub const NETPROBE_INTERVAL_SECS: u64 = 2;
    /// Default transmitter push period in seconds (centralized mode, §5.2).
    pub const TRANSMIT_INTERVAL_SECS: u64 = 2;
}

/// Message-size facts asserted by the paper, used as test oracles.
pub mod sizes {
    /// "The server status report message is less than 200 bytes long"
    /// (§3.2.1); §5.2 measures "around 190 bytes".
    pub const MAX_STATUS_REPORT_BYTES: usize = 200;
    /// "Each probe message will be parsed into a server status structure,
    /// which is 204 bytes long" (§5.2). Our packed binary record keeps this
    /// exact size.
    pub const BINARY_STATUS_RECORD_BYTES: usize = 204;
    /// Default sizes of the two one-way-UDP-stream probe packets (§5.2:
    /// "the current probing packet size is 1600 and 2900 bytes").
    pub const PROBE_SMALL_BYTES: u32 = 1600;
    pub const PROBE_LARGE_BYTES: u32 = 2900;
}

/// Header overheads of the simulated stack, used when converting payload
/// sizes to on-wire bytes.
pub mod overhead {
    /// IPv4 header without options.
    pub const IP_HEADER: u32 = 20;
    /// UDP header.
    pub const UDP_HEADER: u32 = 8;
    /// ICMP header (type/code/checksum/rest).
    pub const ICMP_HEADER: u32 = 8;
    /// Nominal TCP header without options.
    pub const TCP_HEADER: u32 = 20;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_assignment_matches_table_4_2() {
        assert_eq!(ports::MON_SYS, 1111);
        assert_eq!(ports::MON_NET, 1112);
        assert_eq!(ports::MON_SEC, 1113);
        assert_eq!(ports::TRANSMITTER, 1110);
        assert_eq!(ports::RECEIVER, 1121);
        assert_eq!(ports::WIZARD, 1120);
    }

    #[test]
    fn ipc_keys_match_table_4_3() {
        assert_eq!(ipc_keys::MON_SYSTEM, 1234);
        assert_eq!(ipc_keys::MON_NETWORK, 1235);
        assert_eq!(ipc_keys::MON_SECURITY, 1236);
        assert_eq!(ipc_keys::WIZ_SYSTEM, 4321);
        assert_eq!(ipc_keys::WIZ_NETWORK, 5321);
        assert_eq!(ipc_keys::WIZ_SECURITY, 6321);
    }

    #[test]
    fn all_daemon_ports_are_distinct() {
        let ps = [
            ports::MON_SYS,
            ports::MON_NET,
            ports::MON_SEC,
            ports::TRANSMITTER,
            ports::RECEIVER,
            ports::WIZARD,
            ports::SERVICE,
        ];
        for (i, a) in ps.iter().enumerate() {
            for b in &ps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
