//! Live daemon stats query: `smartsockd stats` on the wire.
//!
//! A running daemon (wizard today; any component that keeps a telemetry
//! [`Rollup`](../../smartsock_telemetry/sink/struct.Rollup.html) tomorrow)
//! answers an out-of-band snapshot query over the same UDP socket it
//! serves on. The exchange is one datagram each way:
//!
//! ```text
//! request:  "SSQ1" | seq:u32
//! reply:    "SSA1" | seq:u32 | now_ns:u64 | records:u64 | dropped:u64
//!           | truncated:u8 | count_rows:u16 | rows...
//!           | hist_rows:u16 | rows...
//! count row: scope_len:u16 | scope | name_len:u16 | name | value:u64
//! hist row:  scope_len:u16 | scope | name_len:u16 | name
//!            | count:u64 | p50:u64 | p95:u64 | p99:u64
//! ```
//!
//! All integers little-endian, matching every other smartsock frame. The
//! reply must fit one UDP datagram, so the encoder stops adding rows once
//! [`StatsReply::SOFT_LIMIT`] bytes are reached and sets `truncated` —
//! the receiver sees a complete, decodable frame either way and knows
//! whether rows were cut. Requests are matched to replies by the echoed
//! client-chosen `seq`, same as the wizard request path.

use bytes::{Buf, BufMut, BytesMut};

use crate::ProtoError;

/// A stats snapshot query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsRequest {
    /// Client-chosen tag echoed in the reply.
    pub seq: u32,
}

impl StatsRequest {
    /// First bytes of every stats request; daemons demux on this before
    /// their normal message handling, like `"SSR1"` status reports.
    pub const ASCII_MAGIC: &'static str = "SSQ1";

    pub fn encode(&self) -> BytesMut {
        let mut out = BytesMut::with_capacity(8);
        out.put_slice(Self::ASCII_MAGIC.as_bytes());
        out.put_u32_le(self.seq);
        out
    }

    pub fn decode(mut buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.remaining() < 8 {
            return Err(ProtoError::Truncated { expected: 8, got: buf.remaining() });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != Self::ASCII_MAGIC.as_bytes()[..] {
            return Err(ProtoError::Malformed(format!("bad stats-request magic {magic:?}")));
        }
        let seq = buf.get_u32_le();
        if buf.has_remaining() {
            return Err(ProtoError::Malformed("trailing bytes after stats request".into()));
        }
        Ok(StatsRequest { seq })
    }
}

/// One `(scope, name, value)` counter row of a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsCount {
    pub scope: String,
    pub name: String,
    pub value: u64,
}

/// One `(scope, name)` histogram summary row of a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsHist {
    pub scope: String,
    pub name: String,
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// The daemon's snapshot reply.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Echoes the request's `seq`.
    pub seq: u32,
    /// The daemon's clock when the snapshot was taken.
    pub now_ns: u64,
    /// Total records folded into the daemon's rollup so far.
    pub records: u64,
    /// Records dropped by the daemon's sink backpressure policy.
    pub dropped: u64,
    /// Whether rows were cut to honor the datagram size cap.
    pub truncated: bool,
    pub counts: Vec<StatsCount>,
    pub hists: Vec<StatsHist>,
}

impl StatsReply {
    /// First bytes of every stats reply.
    pub const ASCII_MAGIC: &'static str = "SSA1";

    /// Encoded-size ceiling: the encoder stops adding rows (and flags
    /// `truncated`) once the frame would pass this, keeping the reply a
    /// single safe UDP datagram well under one MTU-and-a-bit.
    pub const SOFT_LIMIT: usize = 4000;

    fn put_str(out: &mut BytesMut, s: &str) {
        let len =
            u16::try_from(s.len().min(u16::MAX as usize)).expect("invariant: clamped to u16::MAX");
        out.put_u16_le(len);
        out.put_slice(&s.as_bytes()[..len as usize]);
    }

    fn get_str(buf: &mut &[u8]) -> Result<String, ProtoError> {
        if buf.remaining() < 2 {
            return Err(ProtoError::Truncated { expected: 2, got: buf.remaining() });
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return Err(ProtoError::Truncated { expected: len, got: buf.remaining() });
        }
        let s = std::str::from_utf8(&buf[..len])
            .map_err(|_| ProtoError::Malformed("stats string is not UTF-8".into()))?
            .to_owned();
        buf.advance(len);
        Ok(s)
    }

    /// Encode, cutting rows (counts first fill, then hists) at the
    /// [`Self::SOFT_LIMIT`] and setting the truncated flag if anything
    /// was dropped. Row order is preserved, so senders should pass rows
    /// most-important-first (sorted maps already give a stable order).
    pub fn encode(&self) -> BytesMut {
        let mut out = BytesMut::with_capacity(64);
        out.put_slice(Self::ASCII_MAGIC.as_bytes());
        out.put_u32_le(self.seq);
        out.put_u64_le(self.now_ns);
        out.put_u64_le(self.records);
        out.put_u64_le(self.dropped);
        let truncated_at = out.len();
        out.put_u8(0); // patched below
        let mut truncated = self.truncated;

        let counts_at = out.len();
        out.put_u16_le(0); // patched below
        let mut count_rows = 0u16;
        for c in &self.counts {
            let need = 2 + c.scope.len() + 2 + c.name.len() + 8;
            if out.len() + need > Self::SOFT_LIMIT || count_rows == u16::MAX {
                truncated = true;
                break;
            }
            Self::put_str(&mut out, &c.scope);
            Self::put_str(&mut out, &c.name);
            out.put_u64_le(c.value);
            count_rows += 1;
        }
        out[counts_at..counts_at + 2].copy_from_slice(&count_rows.to_le_bytes());

        let hists_at = out.len();
        out.put_u16_le(0); // patched below
        let mut hist_rows = 0u16;
        for h in &self.hists {
            let need = 2 + h.scope.len() + 2 + h.name.len() + 32;
            if out.len() + need > Self::SOFT_LIMIT || hist_rows == u16::MAX {
                truncated = true;
                break;
            }
            Self::put_str(&mut out, &h.scope);
            Self::put_str(&mut out, &h.name);
            out.put_u64_le(h.count);
            out.put_u64_le(h.p50_ns);
            out.put_u64_le(h.p95_ns);
            out.put_u64_le(h.p99_ns);
            hist_rows += 1;
        }
        out[hists_at..hists_at + 2].copy_from_slice(&hist_rows.to_le_bytes());
        out[truncated_at] = u8::from(truncated);
        out
    }

    pub fn decode(mut buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.remaining() < 35 {
            return Err(ProtoError::Truncated { expected: 35, got: buf.remaining() });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != Self::ASCII_MAGIC.as_bytes()[..] {
            return Err(ProtoError::Malformed(format!("bad stats-reply magic {magic:?}")));
        }
        let seq = buf.get_u32_le();
        let now_ns = buf.get_u64_le();
        let records = buf.get_u64_le();
        let dropped = buf.get_u64_le();
        let truncated = match buf.get_u8() {
            0 => false,
            1 => true,
            other => {
                return Err(ProtoError::Malformed(format!("bad truncated flag {other}")));
            }
        };
        if buf.remaining() < 2 {
            return Err(ProtoError::Truncated { expected: 2, got: buf.remaining() });
        }
        let count_rows = buf.get_u16_le();
        let mut counts = Vec::with_capacity(count_rows as usize);
        for _ in 0..count_rows {
            let scope = Self::get_str(&mut buf)?;
            let name = Self::get_str(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(ProtoError::Truncated { expected: 8, got: buf.remaining() });
            }
            counts.push(StatsCount { scope, name, value: buf.get_u64_le() });
        }
        if buf.remaining() < 2 {
            return Err(ProtoError::Truncated { expected: 2, got: buf.remaining() });
        }
        let hist_rows = buf.get_u16_le();
        let mut hists = Vec::with_capacity(hist_rows as usize);
        for _ in 0..hist_rows {
            let scope = Self::get_str(&mut buf)?;
            let name = Self::get_str(&mut buf)?;
            if buf.remaining() < 32 {
                return Err(ProtoError::Truncated { expected: 32, got: buf.remaining() });
            }
            hists.push(StatsHist {
                scope,
                name,
                count: buf.get_u64_le(),
                p50_ns: buf.get_u64_le(),
                p95_ns: buf.get_u64_le(),
                p99_ns: buf.get_u64_le(),
            });
        }
        if buf.has_remaining() {
            return Err(ProtoError::Malformed("trailing bytes after stats reply".into()));
        }
        Ok(StatsReply { seq, now_ns, records, dropped, truncated, counts, hists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reply() -> StatsReply {
        StatsReply {
            seq: 0xfeed_f00d,
            now_ns: 123_456_789,
            records: 42,
            dropped: 0,
            truncated: false,
            counts: vec![
                StatsCount {
                    scope: "daemon".to_owned(),
                    name: "wizard-requests".to_owned(),
                    value: 17,
                },
                StatsCount {
                    scope: "host/10.0.1.5".to_owned(),
                    name: "wizard-match".to_owned(),
                    value: 17,
                },
            ],
            hists: vec![StatsHist {
                scope: "host/10.0.1.5".to_owned(),
                name: "wizard-match".to_owned(),
                count: 17,
                p50_ns: 1_000,
                p95_ns: 9_000,
                p99_ns: 12_000,
            }],
        }
    }

    #[test]
    fn request_roundtrip_and_magic() {
        let req = StatsRequest { seq: 0xabad_1dea };
        let wire = req.encode();
        assert!(wire.starts_with(StatsRequest::ASCII_MAGIC.as_bytes()));
        assert_eq!(StatsRequest::decode(&wire).unwrap(), req);
        assert!(StatsRequest::decode(&wire[..5]).is_err());
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(StatsRequest::decode(&bad).is_err());
        let mut long = wire.clone();
        long.put_u8(0);
        assert!(StatsRequest::decode(&long).is_err());
    }

    #[test]
    fn reply_roundtrip() {
        let reply = sample_reply();
        let wire = reply.encode();
        assert!(wire.starts_with(StatsReply::ASCII_MAGIC.as_bytes()));
        assert_eq!(StatsReply::decode(&wire).unwrap(), reply);
    }

    #[test]
    fn empty_reply_roundtrips() {
        let reply = StatsReply { seq: 1, ..StatsReply::default() };
        assert_eq!(StatsReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn reply_decode_rejects_damage() {
        let wire = sample_reply().encode();
        assert!(StatsReply::decode(&wire[..20]).is_err());
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(StatsReply::decode(&bad).is_err());
        let mut trailing = wire.clone();
        trailing.put_u8(7);
        assert!(StatsReply::decode(&trailing).is_err());
        // A lying row count must not read past the end.
        let mut lying = sample_reply();
        lying.counts.clear();
        lying.hists.clear();
        let mut wire = lying.encode();
        let n = wire.len();
        wire[n - 4..n - 2].copy_from_slice(&9u16.to_le_bytes());
        assert!(StatsReply::decode(&wire).is_err());
    }

    #[test]
    fn encode_caps_the_frame_and_flags_truncation() {
        let mut reply = StatsReply { seq: 2, ..StatsReply::default() };
        for i in 0..500 {
            reply.counts.push(StatsCount {
                scope: format!("host/10.0.{}.{}", i / 250, i % 250),
                name: "net-udp-datagrams".to_owned(),
                value: i,
            });
        }
        let wire = reply.encode();
        assert!(wire.len() <= StatsReply::SOFT_LIMIT, "frame over cap: {}", wire.len());
        let back = StatsReply::decode(&wire).unwrap();
        assert!(back.truncated, "cut rows must be flagged");
        assert!(!back.counts.is_empty() && back.counts.len() < 500);
        // Row order preserved: the first rows survive the cut.
        assert_eq!(back.counts[0], reply.counts[0]);
    }
}
