//! Network-path status records exchanged between network monitors
//! (paper §3.3.3, Table 3.4).
//!
//! Each server group runs one network monitor; monitors probe one another
//! and keep a `(delay, bandwidth)` pair per neighbouring group. The
//! resulting table (`netdb` in Fig 3.10) is what the wizard consults for
//! requirements like `monitor_network_delay < 20` or
//! `monitor_network_bw > 10`.

use bytes::{Buf, BufMut};

use crate::addr::Ip;
use crate::ProtoError;

/// Measured metrics of one network path between two monitor groups.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetPathRecord {
    /// Address of the monitor that performed the measurement.
    pub from_monitor: Ip,
    /// Address of the probed peer monitor.
    pub to_monitor: Ip,
    /// One-way-inferred network delay in milliseconds.
    pub delay_ms: f64,
    /// Estimated available bandwidth in Mbps (one-way UDP stream method).
    pub bw_mbps: f64,
    /// Measurement timestamp (virtual nanoseconds).
    pub timestamp_ns: u64,
}

impl NetPathRecord {
    /// Size of the binary encoding in bytes.
    pub const BINARY_BYTES: usize = 4 + 4 + 8 + 8 + 8;

    pub fn encode_binary(&self, out: &mut impl BufMut) {
        out.put_u32_le(self.from_monitor.0);
        out.put_u32_le(self.to_monitor.0);
        out.put_f64_le(self.delay_ms);
        out.put_f64_le(self.bw_mbps);
        out.put_u64_le(self.timestamp_ns);
    }

    pub fn decode_binary(buf: &mut impl Buf) -> Result<Self, ProtoError> {
        if buf.remaining() < Self::BINARY_BYTES {
            return Err(ProtoError::Truncated {
                expected: Self::BINARY_BYTES,
                got: buf.remaining(),
            });
        }
        Ok(NetPathRecord {
            from_monitor: Ip(buf.get_u32_le()),
            to_monitor: Ip(buf.get_u32_le()),
            delay_ms: buf.get_f64_le(),
            bw_mbps: buf.get_f64_le(),
            timestamp_ns: buf.get_u64_le(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn binary_roundtrip() {
        let r = NetPathRecord {
            from_monitor: Ip::new(192, 168, 1, 1),
            to_monitor: Ip::new(192, 168, 2, 1),
            delay_ms: 12.75,
            bw_mbps: 92.86,
            timestamp_ns: 42,
        };
        let mut buf = BytesMut::new();
        r.encode_binary(&mut buf);
        assert_eq!(buf.len(), NetPathRecord::BINARY_BYTES);
        assert_eq!(NetPathRecord::decode_binary(&mut buf).unwrap(), r);
    }

    #[test]
    fn decode_rejects_short_input() {
        let mut buf = BytesMut::from(&[0u8; 10][..]);
        assert!(matches!(
            NetPathRecord::decode_binary(&mut buf),
            Err(ProtoError::Truncated { .. })
        ));
    }
}
