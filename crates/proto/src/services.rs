//! Service-type reporting (paper §6, "Server report issues").
//!
//! "In an actual distributed computing environment, different servers may
//! offer distinct services. We can extend the function of the server probe
//! and allow it to report the types of services available on every
//! server." This module implements that extension: a compact bitmask of
//! well-known service classes, carried in the status report (one extra
//! ASCII field; four bytes of the binary record's reserved area, keeping
//! the 204-byte size) and exposed to the requirement language as
//! `host_service_*` variables.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A set of service classes offered by one server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ServiceMask(pub u32);

impl ServiceMask {
    /// No services advertised (the pre-extension default).
    pub const NONE: ServiceMask = ServiceMask(0);
    /// General computation service (the matmul worker).
    pub const COMPUTE: ServiceMask = ServiceMask(1 << 0);
    /// File/data service (the massd file server).
    pub const FILE: ServiceMask = ServiceMask(1 << 1);
    /// Rendering farm node (a §1.1 motivating workload).
    pub const RENDER: ServiceMask = ServiceMask(1 << 2);
    /// Database service.
    pub const DATABASE: ServiceMask = ServiceMask(1 << 3);

    /// Named classes, in bit order, as exposed to the requirement
    /// language (`host_service_<name>`).
    pub const NAMES: [(&'static str, ServiceMask); 4] = [
        ("compute", Self::COMPUTE),
        ("file", Self::FILE),
        ("render", Self::RENDER),
        ("database", Self::DATABASE),
    ];

    pub fn contains(self, other: ServiceMask) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Look up a class by its requirement-language name.
    pub fn by_name(name: &str) -> Option<ServiceMask> {
        Self::NAMES.iter().find(|(n, _)| *n == name).map(|(_, m)| *m)
    }
}

impl BitOr for ServiceMask {
    type Output = ServiceMask;
    fn bitor(self, rhs: ServiceMask) -> ServiceMask {
        ServiceMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for ServiceMask {
    fn bitor_assign(&mut self, rhs: ServiceMask) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for ServiceMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for (name, mask) in ServiceMask::NAMES {
            if self.contains(mask) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        let unknown = self.0 & !ServiceMask::NAMES.iter().fold(0, |a, (_, m)| a | m.0);
        if unknown != 0 {
            if !first {
                f.write_str("|")?;
            }
            write!(f, "{unknown:#x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_compose_and_test() {
        let m = ServiceMask::COMPUTE | ServiceMask::FILE;
        assert!(m.contains(ServiceMask::COMPUTE));
        assert!(m.contains(ServiceMask::FILE));
        assert!(!m.contains(ServiceMask::RENDER));
        assert!(ServiceMask::NONE.is_empty());
    }

    #[test]
    fn names_resolve_both_ways() {
        for (name, mask) in ServiceMask::NAMES {
            assert_eq!(ServiceMask::by_name(name), Some(mask));
        }
        assert_eq!(ServiceMask::by_name("quantum"), None);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", ServiceMask::NONE), "none");
        assert_eq!(format!("{:?}", ServiceMask::COMPUTE | ServiceMask::FILE), "compute|file");
        assert_eq!(format!("{:?}", ServiceMask(1 << 10)), "0x400");
    }
}
