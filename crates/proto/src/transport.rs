//! The backend seam: one datagram-transport trait, two engines.
//!
//! The paper's control plane is four daemons exchanging UDP datagrams
//! (probe → monitor, client ↔ wizard). Nothing in the protocol logic
//! cares *how* a datagram travels — only that bytes sent to an
//! [`Endpoint`] arrive there. This trait pins that seam so the engine
//! types (`smartsock_wizard::engine`, `smartsock_probe::engine`) can be
//! driven by either backend:
//!
//! * the deterministic simulator (`smartsock_net::SimTransport`), where
//!   "now" is virtual scheduler time and sends traverse modeled links;
//! * real OS sockets (`smartsock_live::UdpTransport`), where "now" is a
//!   monotonic clock and sends hit 127.0.0.1 (or a LAN).
//!
//! Time is exposed as plain nanoseconds rather than a clock object:
//! `u64` is the common denominator between `SimTime` and a monotonic
//! anchor, and the engines only ever compare ages against windows.

use crate::addr::Endpoint;

/// Why a transport send failed. The simulator never fails (loss is
/// modeled in-band, as silence); the socket backend surfaces OS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError(pub String);

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport send failed: {}", self.0)
    }
}

impl std::error::Error for TransportError {}

/// A datagram transport plus the clock that stamps its traffic.
///
/// Implementations promise best-effort datagram semantics — sends may be
/// silently lost (UDP, or a simulated drop), never duplicated by the
/// transport itself, and delivered with payload bytes unchanged. The
/// protocol engines are written against exactly those guarantees.
pub trait Transport {
    /// The backend's current time in nanoseconds. Virtual time in the
    /// simulator; time since daemon start on the socket backend.
    fn now_ns(&self) -> u64;

    /// Send one datagram. `from` is advisory on socket backends (the OS
    /// socket defines the true source); the simulator routes by it.
    fn send(&mut self, from: Endpoint, to: Endpoint, payload: &[u8]) -> Result<(), TransportError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ip;

    /// A loopback transport for engine unit tests: records every send.
    struct RecordingTransport {
        now: u64,
        sent: Vec<(Endpoint, Endpoint, Vec<u8>)>,
    }

    impl Transport for RecordingTransport {
        fn now_ns(&self) -> u64 {
            self.now
        }
        fn send(
            &mut self,
            from: Endpoint,
            to: Endpoint,
            payload: &[u8],
        ) -> Result<(), TransportError> {
            self.sent.push((from, to, payload.to_vec()));
            Ok(())
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable_via_dyn() {
        let mut t = RecordingTransport { now: 42, sent: Vec::new() };
        {
            let dt: &mut dyn Transport = &mut t;
            assert_eq!(dt.now_ns(), 42);
            let a = Endpoint::new(Ip::new(10, 0, 0, 1), 1111);
            let b = Endpoint::new(Ip::new(10, 0, 0, 2), 1120);
            dt.send(a, b, b"hello").unwrap();
        }
        assert_eq!(t.sent.len(), 1);
        assert_eq!(t.sent[0].2, b"hello");
    }

    #[test]
    fn error_displays_the_cause() {
        let e = TransportError("socket closed".to_owned());
        assert!(e.to_string().contains("socket closed"));
    }
}
