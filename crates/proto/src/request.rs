//! User request and wizard reply messages (paper §3.6.1, Tables 3.5/3.6).
//!
//! Request: `[Sequence Num | Server Num | Option | Request Detail]`, sent as
//! one UDP datagram to the wizard. Reply: `[Sequence Num | Server Num |
//! Server-1 | ... | Server-n]`. The sequence number is a client-chosen
//! random tag matching replies to requests; the reply is capped at 60
//! servers "because the server list is sent back in the UDP message, which
//! is not reliable when the message becomes long".

use bytes::{Buf, BufMut, BytesMut};

use crate::addr::{Endpoint, Ip};
use crate::ProtoError;

/// Upper bound on servers per reply (paper: "Currently the limit is set to
/// be 60").
pub const MAX_SERVERS_PER_REPLY: usize = 60;

/// The request `Option` field: what the wizard/client should do in special
/// situations (paper: shortfall handling and requirement templates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestOption {
    /// Accept a candidate list shorter than requested instead of failing.
    pub accept_fewer: bool,
    /// Index of a wizard-side predefined requirement template to apply in
    /// addition to (before) the request detail. `None` when unused.
    pub template: Option<u8>,
}

impl RequestOption {
    pub const DEFAULT: RequestOption = RequestOption { accept_fewer: true, template: None };

    /// Strict variant: the request fails unless all servers are found.
    pub const EXACT: RequestOption = RequestOption { accept_fewer: false, template: None };

    // Bit layout: bit 0 = accept_fewer, bit 1 = template present,
    // bits 8..16 = template id.
    fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.accept_fewer {
            v |= 0x0001;
        }
        if let Some(t) = self.template {
            v |= 0x0002 | (u16::from(t) << 8);
        }
        v
    }

    fn from_u16(v: u16) -> RequestOption {
        RequestOption {
            accept_fewer: v & 0x0001 != 0,
            template: if v & 0x0002 != 0 {
                Some(u8::try_from(v >> 8).expect("invariant: u16 >> 8 always fits u8"))
            } else {
                None
            },
        }
    }
}

impl Default for RequestOption {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// A user request for `server_num` servers satisfying `detail`.
#[derive(Clone, Debug, PartialEq)]
pub struct UserRequest {
    /// Random tag identifying the request (Table 3.5 "Sequence Num").
    pub seq: u32,
    /// Number of servers wanted; the wizard caps the reply at
    /// [`MAX_SERVERS_PER_REPLY`].
    pub server_num: u16,
    pub option: RequestOption,
    /// The requirement text in the meta language (§4.3).
    pub detail: String,
}

impl UserRequest {
    /// Encode as a UDP payload.
    ///
    /// # Example
    ///
    /// ```
    /// use smartsock_proto::{RequestOption, UserRequest};
    ///
    /// let req = UserRequest {
    ///     seq: 0x1234,
    ///     server_num: 3,
    ///     option: RequestOption::DEFAULT,
    ///     detail: "host_cpu_free > 0.9\n".to_owned(),
    /// };
    /// let wire = req.encode();
    /// assert_eq!(UserRequest::decode(&wire).unwrap(), req);
    /// ```
    pub fn encode(&self) -> BytesMut {
        let mut out = BytesMut::with_capacity(8 + self.detail.len());
        out.put_u32_le(self.seq);
        out.put_u16_le(self.server_num);
        out.put_u16_le(self.option.to_u16());
        out.put_slice(self.detail.as_bytes());
        out
    }

    // analyze: allow(SS-PROTO-002): detail is the unconsumed remainder, read via from_utf8 rather than a Buf op — both sides agree on [u32, u16, u16, bytes]
    pub fn decode(mut buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.remaining() < 8 {
            return Err(ProtoError::Truncated { expected: 8, got: buf.remaining() });
        }
        let seq = buf.get_u32_le();
        let server_num = buf.get_u16_le();
        let option = RequestOption::from_u16(buf.get_u16_le());
        let detail = std::str::from_utf8(buf)
            .map_err(|_| ProtoError::Malformed("request detail is not UTF-8".into()))?
            .to_owned();
        Ok(UserRequest { seq, server_num, option, detail })
    }
}

/// Outcome classification carried implicitly by the reply length; computed
/// client-side when matching Table 3.6 replies against the original request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The wizard found every requested server.
    Full,
    /// Fewer servers than requested (paper §3.6.2 step 3: "client library
    /// will take different actions based on the option from the user").
    Short { requested: u16, returned: u16 },
    /// No server qualified.
    Empty,
}

/// The wizard's reply: the candidate server list.
#[derive(Clone, Debug, PartialEq)]
pub struct WizardReply {
    /// Echoes the request's sequence number.
    pub seq: u32,
    /// Service endpoints of the selected servers, best match first.
    pub servers: Vec<Endpoint>,
}

impl WizardReply {
    /// Encode as a UDP payload. Panics (debug) if over the 60-server cap —
    /// the wizard enforces the cap before constructing the reply.
    pub fn encode(&self) -> BytesMut {
        debug_assert!(self.servers.len() <= MAX_SERVERS_PER_REPLY);
        let mut out = BytesMut::with_capacity(8 + self.servers.len() * 6);
        out.put_u32_le(self.seq);
        let count = u16::try_from(self.servers.len())
            .expect("invariant: reply capped at MAX_SERVERS_PER_REPLY (60)");
        out.put_u16_le(count);
        for s in &self.servers {
            out.put_u32_le(s.ip.0);
            out.put_u16_le(s.port);
        }
        out
    }

    pub fn decode(mut buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.remaining() < 6 {
            return Err(ProtoError::Truncated { expected: 6, got: buf.remaining() });
        }
        let seq = buf.get_u32_le();
        let n = buf.get_u16_le() as usize;
        if n > MAX_SERVERS_PER_REPLY {
            return Err(ProtoError::Malformed(format!("reply claims {n} servers (cap 60)")));
        }
        if buf.remaining() < n * 6 {
            return Err(ProtoError::Truncated { expected: n * 6, got: buf.remaining() });
        }
        let mut servers = Vec::with_capacity(n);
        for _ in 0..n {
            let ip = Ip(buf.get_u32_le());
            let port = buf.get_u16_le();
            servers.push(Endpoint::new(ip, port));
        }
        if buf.has_remaining() {
            return Err(ProtoError::Malformed("trailing bytes after server list".into()));
        }
        Ok(WizardReply { seq, servers })
    }

    /// Classify this reply against the request it answers.
    pub fn status(&self, requested: u16) -> ReplyStatus {
        let returned = u16::try_from(self.servers.len())
            .expect("invariant: decode rejects lists over the 60-server cap");
        if returned == 0 {
            ReplyStatus::Empty
        } else if returned < requested {
            ReplyStatus::Short { requested, returned }
        } else {
            ReplyStatus::Full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = UserRequest {
            seq: 0xdead_beef,
            server_num: 4,
            option: RequestOption { accept_fewer: false, template: Some(7) },
            detail: "host_cpu_free > 0.9\nhost_memory_free > 5\n".to_owned(),
        };
        let wire = req.encode();
        assert_eq!(UserRequest::decode(&wire).unwrap(), req);
    }

    #[test]
    fn request_decode_rejects_short_and_non_utf8() {
        assert!(UserRequest::decode(&[1, 2, 3]).is_err());
        let mut wire = UserRequest {
            seq: 1,
            server_num: 1,
            option: RequestOption::DEFAULT,
            detail: String::new(),
        }
        .encode();
        wire.put_slice(&[0xff, 0xfe]);
        assert!(UserRequest::decode(&wire).is_err());
    }

    #[test]
    fn option_bits_roundtrip() {
        for opt in [
            RequestOption::DEFAULT,
            RequestOption::EXACT,
            RequestOption { accept_fewer: true, template: Some(0) },
            RequestOption { accept_fewer: false, template: Some(255) },
        ] {
            assert_eq!(RequestOption::from_u16(opt.to_u16()), opt);
        }
    }

    #[test]
    fn reply_roundtrip_and_status() {
        let reply = WizardReply {
            seq: 42,
            servers: vec![
                Endpoint::new(Ip::new(192, 168, 1, 2), 1200),
                Endpoint::new(Ip::new(192, 168, 2, 3), 1200),
            ],
        };
        let wire = reply.encode();
        let back = WizardReply::decode(&wire).unwrap();
        assert_eq!(back, reply);
        assert_eq!(back.status(2), ReplyStatus::Full);
        assert_eq!(back.status(1), ReplyStatus::Full);
        assert_eq!(back.status(5), ReplyStatus::Short { requested: 5, returned: 2 });
        let empty = WizardReply { seq: 1, servers: vec![] };
        assert_eq!(empty.status(3), ReplyStatus::Empty);
    }

    #[test]
    fn reply_decode_enforces_cap_and_exact_length() {
        let mut wire = BytesMut::new();
        wire.put_u32_le(1);
        wire.put_u16_le(61); // over the cap
        assert!(WizardReply::decode(&wire).is_err());

        let reply = WizardReply { seq: 9, servers: vec![Endpoint::new(Ip::new(1, 2, 3, 4), 80)] };
        let mut wire = reply.encode();
        wire.put_u8(0); // stray byte
        assert!(WizardReply::decode(&wire).is_err());
        let short = &reply.encode()[..8];
        assert!(WizardReply::decode(short).is_err());
    }

    #[test]
    fn sixty_servers_fit_in_one_reply() {
        let servers: Vec<Endpoint> = (0..60)
            .map(|i| Endpoint::new(Ip::new(10, 0, (i / 250) as u8, (i % 250) as u8), 1200))
            .collect();
        let reply = WizardReply { seq: 7, servers };
        let wire = reply.encode();
        // Must fit comfortably within one UDP datagram (< 64 KiB, and in
        // fact < 1 standard MTU minus headers — 6+60*6 = 366 bytes).
        assert!(wire.len() < 1472);
        assert_eq!(WizardReply::decode(&wire).unwrap().servers.len(), 60);
    }
}
