//! # smartsock-proto
//!
//! Wire formats and protocol constants of the Smart TCP socket system.
//!
//! The paper fixes several concrete formats, all implemented here:
//!
//! * the ASCII **server status report** a probe sends to the system monitor
//!   every few seconds (§3.2.1, Table 3.1) — numbers are transmitted as
//!   decimal strings precisely so that big- and little-endian machines
//!   interoperate without marshalling;
//! * the binary **`[type, size, data]` framing** the transmitter uses to
//!   ship whole status databases to the receiver over TCP (§3.5.1) — binary
//!   because a monitor may handle many servers and ASCII conversion would be
//!   wasteful; the paper notes this requires both ends to agree on layout,
//!   and we pin an explicit little-endian layout;
//! * the **user request** and **wizard reply** UDP messages (§3.6.1,
//!   Tables 3.5 and 3.6), including the 60-server reply cap;
//! * the **port numbers** (Table 4.2) and **System-V IPC keys** (Table 4.3)
//!   of the deployment;
//! * network-path records `(delay, bandwidth)` exchanged between network
//!   monitors (Table 3.4) and security-level records (§3.4).
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod addr;
pub mod consts;
pub mod framing;
pub mod netstatus;
pub mod outcome;
pub mod request;
pub mod security;
pub mod services;
pub mod stats;
pub mod status;
pub mod transport;
pub mod typestate;

pub use addr::{Endpoint, HostName, Ip};
pub use framing::{Frame, RecordType};
pub use netstatus::NetPathRecord;
pub use outcome::{OutcomeKind, OutcomeReport};
pub use request::{ReplyStatus, RequestOption, UserRequest, WizardReply, MAX_SERVERS_PER_REPLY};
pub use security::SecurityRecord;
pub use services::ServiceMask;
pub use stats::{StatsCount, StatsHist, StatsReply, StatsRequest};
pub use status::ServerStatusReport;
pub use transport::{Transport, TransportError};
pub use typestate::{FlowError, RequestFlow};

/// Errors produced when parsing any of the protocol formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Input ended before the format was complete.
    Truncated { expected: usize, got: usize },
    /// A field failed to parse; carries the field name and offending text.
    BadField { field: &'static str, text: String },
    /// A frame or message advertised an unknown type tag.
    UnknownType(u32),
    /// A structural problem (wrong magic, bad count, ...).
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { expected, got } => {
                write!(f, "truncated message: expected {expected} bytes, got {got}")
            }
            ProtoError::BadField { field, text } => {
                write!(f, "bad field {field}: {text:?}")
            }
            ProtoError::UnknownType(t) => write!(f, "unknown record type {t}"),
            ProtoError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}
