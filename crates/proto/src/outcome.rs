//! Client outcome reports: the feedback half of the self-healing layer.
//!
//! The thesis's wizard is open-loop — it hands out candidate lists and
//! never hears how they worked out. The self-healing extension closes the
//! loop: after a request resolves, the client library (or the application,
//! via `SmartClient::report_outcome`) sends one small UDP datagram per
//! server to the wizard's health port describing what happened. The wizard
//! feeds these into its health-score table (DESIGN.md §11), which drives
//! the quarantine state machine and selection discounts.
//!
//! Wire format (7 bytes): `[server ip u32 le | kind u8 | reserved u16 le]`.
//! UDP and fire-and-forget, like the request path: a lost report only
//! delays convergence, it never wedges a request.

use bytes::{Buf, BufMut, BytesMut};

use crate::addr::Ip;
use crate::ProtoError;

/// What happened with one assigned server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// The server did its job (connect succeeded, or the application
    /// finished its work there).
    Completed,
    /// The server accepted the assignment but stopped responding.
    Timeout,
    /// The service connection could not be established at all.
    ConnectFailed,
}

impl OutcomeKind {
    /// Stable kebab-case label (used in telemetry attrs).
    pub fn label(self) -> &'static str {
        match self {
            OutcomeKind::Completed => "completed",
            OutcomeKind::Timeout => "timeout",
            OutcomeKind::ConnectFailed => "connect-failed",
        }
    }

    /// Whether this outcome counts against the server's health score.
    pub fn is_failure(self) -> bool {
        !matches!(self, OutcomeKind::Completed)
    }

    fn to_u8(self) -> u8 {
        match self {
            OutcomeKind::Completed => 0,
            OutcomeKind::Timeout => 1,
            OutcomeKind::ConnectFailed => 2,
        }
    }

    fn from_u8(v: u8) -> Option<OutcomeKind> {
        match v {
            0 => Some(OutcomeKind::Completed),
            1 => Some(OutcomeKind::Timeout),
            2 => Some(OutcomeKind::ConnectFailed),
            _ => None,
        }
    }
}

/// One client-observed outcome for one server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutcomeReport {
    /// The server the outcome is about (not the reporting client).
    pub server: Ip,
    pub outcome: OutcomeKind,
}

impl OutcomeReport {
    /// Encode as a UDP payload.
    ///
    /// # Example
    ///
    /// ```
    /// use smartsock_proto::{Ip, OutcomeKind, OutcomeReport};
    ///
    /// let rep = OutcomeReport { server: Ip::new(192, 168, 4, 11), outcome: OutcomeKind::Timeout };
    /// assert_eq!(OutcomeReport::decode(&rep.encode()).unwrap(), rep);
    /// ```
    pub fn encode(&self) -> BytesMut {
        let mut out = BytesMut::with_capacity(7);
        out.put_u32_le(self.server.0);
        out.put_u8(self.outcome.to_u8());
        out.put_u16_le(0); // reserved
        out
    }

    pub fn decode(mut buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.remaining() < 7 {
            return Err(ProtoError::Truncated { expected: 7, got: buf.remaining() });
        }
        let server = Ip(buf.get_u32_le());
        let kind = buf.get_u8();
        let _reserved = buf.get_u16_le();
        if buf.has_remaining() {
            return Err(ProtoError::Malformed("trailing bytes after outcome report".into()));
        }
        let outcome = OutcomeKind::from_u8(kind)
            .ok_or_else(|| ProtoError::Malformed(format!("unknown outcome kind {kind}")))?;
        Ok(OutcomeReport { server, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_kind() {
        for outcome in [OutcomeKind::Completed, OutcomeKind::Timeout, OutcomeKind::ConnectFailed] {
            let rep = OutcomeReport { server: Ip::new(10, 0, 1, 2), outcome };
            assert_eq!(OutcomeReport::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn decode_rejects_short_unknown_and_trailing() {
        assert!(OutcomeReport::decode(&[1, 2, 3]).is_err());
        let mut wire =
            OutcomeReport { server: Ip::new(1, 2, 3, 4), outcome: OutcomeKind::Completed }.encode();
        wire[4] = 9; // unknown kind
        assert!(OutcomeReport::decode(&wire).is_err());
        let mut wire =
            OutcomeReport { server: Ip::new(1, 2, 3, 4), outcome: OutcomeKind::Completed }.encode();
        wire.put_u8(0);
        assert!(OutcomeReport::decode(&wire).is_err());
    }

    #[test]
    fn labels_are_kebab_case() {
        for outcome in [OutcomeKind::Completed, OutcomeKind::Timeout, OutcomeKind::ConnectFailed] {
            let label = outcome.label();
            assert!(label
                .split('-')
                .all(|seg| !seg.is_empty() && seg.bytes().all(|b| b.is_ascii_lowercase())));
        }
    }
}
