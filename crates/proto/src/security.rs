//! Security-level records (paper §3.4).
//!
//! The thesis deliberately keeps security pluggable: "the security monitor
//! reads the security records from a dummy security log. The log file
//! contains the server names and the correspondingly security levels, which
//! is an integer representing the clearance level of each server." We
//! implement exactly that record plus the dummy-log text format, so a third
//! party agent (the paper cites Cisco NAC) could be substituted by emitting
//! the same lines.

use bytes::{Buf, BufMut};

use crate::addr::{HostName, Ip};
use crate::ProtoError;

/// One server's clearance level, as read from the security log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecurityRecord {
    pub host: HostName,
    pub ip: Ip,
    /// Integer clearance level; larger means more trusted. Exposed to the
    /// requirement language as `host_security_level`.
    pub level: i32,
}

impl SecurityRecord {
    pub const BINARY_BYTES: usize = 24 + 4 + 4;

    /// Parse one line of the dummy security log: `<host> <ip> <level>`,
    /// `#`-comments and blank lines skipped by the caller.
    pub fn parse_log_line(line: &str) -> Result<Self, ProtoError> {
        let mut it = line.split_ascii_whitespace();
        let host =
            it.next().ok_or(ProtoError::BadField { field: "host", text: "<missing>".into() })?;
        let ip: Ip = it
            .next()
            .ok_or(ProtoError::BadField { field: "ip", text: "<missing>".into() })?
            .parse()?;
        let level =
            it.next().ok_or(ProtoError::BadField { field: "level", text: "<missing>".into() })?;
        let level: i32 = level
            .parse()
            .map_err(|_| ProtoError::BadField { field: "level", text: level.into() })?;
        if it.next().is_some() {
            return Err(ProtoError::Malformed("trailing fields in security log line".into()));
        }
        Ok(SecurityRecord { host: HostName::new(host), ip, level })
    }

    /// Render as a dummy-log line.
    pub fn to_log_line(&self) -> String {
        format!("{} {} {}", self.host, self.ip, self.level)
    }

    /// Parse a whole dummy log, skipping comments and blank lines.
    pub fn parse_log(text: &str) -> Result<Vec<Self>, ProtoError> {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(Self::parse_log_line)
            .collect()
    }

    pub fn encode_binary(&self, out: &mut impl BufMut) {
        let mut host = [0u8; 24];
        let src = self.host.as_str().as_bytes();
        let n = src.len().min(23);
        host[..n].copy_from_slice(&src[..n]);
        out.put_slice(&host);
        out.put_u32_le(self.ip.0);
        out.put_i32_le(self.level);
    }

    pub fn decode_binary(buf: &mut impl Buf) -> Result<Self, ProtoError> {
        if buf.remaining() < Self::BINARY_BYTES {
            return Err(ProtoError::Truncated {
                expected: Self::BINARY_BYTES,
                got: buf.remaining(),
            });
        }
        let mut host = [0u8; 24];
        buf.copy_to_slice(&mut host);
        let end = host.iter().position(|&b| b == 0).unwrap_or(host.len());
        let host = HostName::new(String::from_utf8_lossy(&host[..end]).into_owned());
        Ok(SecurityRecord { host, ip: Ip(buf.get_u32_le()), level: buf.get_i32_le() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn log_line_roundtrip() {
        let r = SecurityRecord { host: "helene".into(), ip: Ip::new(192, 168, 3, 1), level: 5 };
        let line = r.to_log_line();
        assert_eq!(SecurityRecord::parse_log_line(&line).unwrap(), r);
    }

    #[test]
    fn log_parser_skips_comments_and_blanks() {
        let log = "# dummy security log\n\nhelene 192.168.3.1 5\n  # indented comment\nmimas 192.168.2.1 -1\n";
        let recs = SecurityRecord::parse_log(log).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].host.as_str(), "helene");
        assert_eq!(recs[1].level, -1);
    }

    #[test]
    fn log_line_rejects_garbage() {
        assert!(SecurityRecord::parse_log_line("helene").is_err());
        assert!(SecurityRecord::parse_log_line("helene 192.168.3.1 high").is_err());
        assert!(SecurityRecord::parse_log_line("helene 192.168.3.1 5 extra").is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let r = SecurityRecord { host: "titan-x".into(), ip: Ip::new(192, 168, 4, 1), level: 3 };
        let mut buf = BytesMut::new();
        r.encode_binary(&mut buf);
        assert_eq!(buf.len(), SecurityRecord::BINARY_BYTES);
        assert_eq!(SecurityRecord::decode_binary(&mut buf).unwrap(), r);
    }
}
