//! Typestate request flow: protocol sequence errors are compile errors.
//!
//! "Session Types for the Transport Layer" motivates encoding a socket's
//! protocol phase in its *type* so that out-of-order operations cannot be
//! written at all. The client side of the paper's §3.6.2 handshake has a
//! strict phase order:
//!
//! ```text
//! Unbound ──register──▶ Registered ──request──▶ Requested ──accept──▶ Connected
//! ```
//!
//! [`RequestFlow<S>`] is that state machine with one zero-sized (or
//! data-carrying) type per phase. Every transition consumes `self`, so a
//! phase can never be replayed, skipped, or used after it has advanced —
//! on **both** backends, because the flow is pure protocol logic: it
//! encodes and decodes wire bytes but never touches a socket. The sim
//! client and the live client each own the I/O around it.
//!
//! Misuse does not compile:
//!
//! ```compile_fail
//! use smartsock_proto::typestate::RequestFlow;
//! use smartsock_proto::{RequestOption, UserRequest};
//!
//! let req = UserRequest {
//!     seq: 1, server_num: 1, option: RequestOption::DEFAULT, detail: String::new(),
//! };
//! // Cannot request before registering: `request` is not defined on
//! // `RequestFlow<Unbound>`.
//! let flow = RequestFlow::new().request(req);
//! ```
//!
//! ```compile_fail
//! use smartsock_proto::typestate::RequestFlow;
//! use smartsock_proto::{Endpoint, Ip};
//!
//! let local = Endpoint::new(Ip::new(127, 0, 0, 1), 40000);
//! let flow = RequestFlow::new().register(local);
//! // Cannot accept a reply before a request is in flight: `accept` is
//! // not defined on `RequestFlow<Registered>`.
//! let _ = flow.accept(b"....");
//! ```
//!
//! ```compile_fail
//! use smartsock_proto::typestate::RequestFlow;
//! use smartsock_proto::{Endpoint, Ip};
//!
//! let local = Endpoint::new(Ip::new(127, 0, 0, 1), 40000);
//! let flow = RequestFlow::new();
//! let a = flow.register(local);
//! // Transitions consume the flow: registering twice is use-after-move.
//! let b = flow.register(local);
//! ```

use crate::addr::Endpoint;
use crate::request::{ReplyStatus, UserRequest, WizardReply};
use crate::ProtoError;

/// Phase 0: no local endpoint yet.
#[derive(Debug)]
pub struct Unbound(());

/// Phase 1: a local endpoint is registered; ready to issue a request.
#[derive(Debug)]
pub struct Registered {
    local: Endpoint,
}

/// Phase 2: a request is encoded and in flight. Retains the exact wire
/// bytes so a timeout can retransmit *the same* datagram (same seq).
#[derive(Debug)]
pub struct Requested {
    local: Endpoint,
    req: UserRequest,
    wire: Vec<u8>,
}

/// Phase 3: a matching reply with a usable server list arrived.
#[derive(Debug)]
pub struct Connected {
    local: Endpoint,
    reply: WizardReply,
    status: ReplyStatus,
}

/// Why a candidate reply datagram did not advance the flow. The flow is
/// handed back alongside the error so the caller can keep waiting or
/// retransmit — rejection never loses the in-flight request.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The datagram is not a decodable wizard reply.
    Undecodable(ProtoError),
    /// A decodable reply for some *other* request (stale or crossed).
    SeqMismatch { expected: u32, got: u32 },
    /// The wizard found no qualifying server.
    Empty,
    /// Fewer servers than requested, and the request demanded all of them
    /// (`RequestOption::accept_fewer == false`).
    Short { requested: u16, returned: u16 },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Undecodable(e) => write!(f, "undecodable reply: {e}"),
            FlowError::SeqMismatch { expected, got } => {
                write!(f, "reply seq {got:#x} does not match request seq {expected:#x}")
            }
            FlowError::Empty => write!(f, "no server satisfies the requirement"),
            FlowError::Short { requested, returned } => {
                write!(f, "only {returned} of {requested} servers found (exact match required)")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// The client request flow at phase `S`. See the module docs.
#[derive(Debug)]
pub struct RequestFlow<S> {
    state: S,
}

impl RequestFlow<Unbound> {
    /// A fresh flow. The only constructor: every flow starts unbound.
    pub fn new() -> RequestFlow<Unbound> {
        RequestFlow { state: Unbound(()) }
    }

    /// Register the local endpoint the reply should come back to.
    pub fn register(self, local: Endpoint) -> RequestFlow<Registered> {
        RequestFlow { state: Registered { local } }
    }
}

impl Default for RequestFlow<Unbound> {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestFlow<Registered> {
    pub fn local(&self) -> Endpoint {
        self.state.local
    }

    /// Encode `req` and advance to [`Requested`]. The caller sends
    /// [`RequestFlow::wire`] through its transport (and may resend it).
    pub fn request(self, req: UserRequest) -> RequestFlow<Requested> {
        let wire = req.encode().to_vec();
        RequestFlow { state: Requested { local: self.state.local, req, wire } }
    }
}

impl RequestFlow<Requested> {
    pub fn local(&self) -> Endpoint {
        self.state.local
    }

    /// The encoded request datagram — stable across retransmits, so the
    /// wizard sees one sequence number however many times it is sent.
    pub fn wire(&self) -> &[u8] {
        &self.state.wire
    }

    /// The in-flight request's sequence tag.
    pub fn seq(&self) -> u32 {
        self.state.req.seq
    }

    /// Offer a received datagram as the reply. Advances to [`Connected`]
    /// when it decodes, matches the sequence number, and satisfies the
    /// request's shortfall option; otherwise hands the flow back with the
    /// reason so the caller can keep its retry loop (§3.6.2 step 3).
    #[allow(clippy::result_large_err)] // the Err arm intentionally returns the flow itself
    pub fn accept(
        self,
        datagram: &[u8],
    ) -> Result<RequestFlow<Connected>, (RequestFlow<Requested>, FlowError)> {
        let reply = match WizardReply::decode(datagram) {
            Ok(r) => r,
            Err(e) => return Err((self, FlowError::Undecodable(e))),
        };
        if reply.seq != self.state.req.seq {
            let err = FlowError::SeqMismatch { expected: self.state.req.seq, got: reply.seq };
            return Err((self, err));
        }
        let status = reply.status(self.state.req.server_num);
        match status {
            ReplyStatus::Empty => Err((self, FlowError::Empty)),
            ReplyStatus::Short { requested, returned } if !self.state.req.option.accept_fewer => {
                Err((self, FlowError::Short { requested, returned }))
            }
            _ => Ok(RequestFlow { state: Connected { local: self.state.local, reply, status } }),
        }
    }
}

impl RequestFlow<Connected> {
    pub fn local(&self) -> Endpoint {
        self.state.local
    }

    /// The selected service endpoints, best match first.
    pub fn servers(&self) -> &[Endpoint] {
        &self.state.reply.servers
    }

    /// The best-ranked server (always present: empty replies never reach
    /// the connected phase).
    pub fn primary(&self) -> Option<Endpoint> {
        self.state.reply.servers.first().copied()
    }

    /// Full or short, as classified against the original request.
    pub fn status(&self) -> ReplyStatus {
        self.state.status
    }

    /// Surrender the flow for the raw reply.
    pub fn into_reply(self) -> WizardReply {
        self.state.reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ip;
    use crate::request::RequestOption;

    fn local() -> Endpoint {
        Endpoint::new(Ip::new(127, 0, 0, 1), 41000)
    }

    fn req(seq: u32, n: u16, accept_fewer: bool) -> UserRequest {
        UserRequest {
            seq,
            server_num: n,
            option: RequestOption { accept_fewer, template: None },
            detail: "host_cpu_free > 0.5\n".to_owned(),
        }
    }

    fn reply_wire(seq: u32, n: usize) -> Vec<u8> {
        let servers =
            (0..n).map(|i| Endpoint::new(Ip::new(10, 0, 1, (i + 1) as u8), 1200)).collect();
        WizardReply { seq, servers }.encode().to_vec()
    }

    #[test]
    fn happy_path_reaches_connected() {
        let flow = RequestFlow::new().register(local()).request(req(7, 2, true));
        assert_eq!(flow.seq(), 7);
        assert_eq!(flow.wire(), req(7, 2, true).encode().to_vec());
        let done = flow.accept(&reply_wire(7, 2)).unwrap();
        assert_eq!(done.servers().len(), 2);
        assert_eq!(done.status(), ReplyStatus::Full);
        assert_eq!(done.primary().unwrap().ip, Ip::new(10, 0, 1, 1));
        assert_eq!(done.local(), local());
        assert_eq!(done.into_reply().seq, 7);
    }

    #[test]
    fn seq_mismatch_hands_the_flow_back_for_retry() {
        let flow = RequestFlow::new().register(local()).request(req(7, 1, true));
        let (flow, err) = flow.accept(&reply_wire(8, 1)).unwrap_err();
        assert_eq!(err, FlowError::SeqMismatch { expected: 7, got: 8 });
        // The returned flow still carries the original wire bytes.
        let done = flow.accept(&reply_wire(7, 1)).unwrap();
        assert_eq!(done.servers().len(), 1);
    }

    #[test]
    fn undecodable_datagrams_do_not_consume_the_request() {
        let flow = RequestFlow::new().register(local()).request(req(9, 1, true));
        let (flow, err) = flow.accept(b"garbage").unwrap_err();
        assert!(matches!(err, FlowError::Undecodable(_)));
        assert!(flow.accept(&reply_wire(9, 1)).is_ok());
    }

    #[test]
    fn empty_replies_never_connect() {
        let flow = RequestFlow::new().register(local()).request(req(3, 2, true));
        let (_flow, err) = flow.accept(&reply_wire(3, 0)).unwrap_err();
        assert_eq!(err, FlowError::Empty);
    }

    #[test]
    fn shortfall_respects_the_accept_fewer_option() {
        // Strict request: a short reply is an error.
        let flow = RequestFlow::new().register(local()).request(req(4, 3, false));
        let (_f, err) = flow.accept(&reply_wire(4, 2)).unwrap_err();
        assert_eq!(err, FlowError::Short { requested: 3, returned: 2 });
        // Permissive request: a short reply connects with Short status.
        let flow = RequestFlow::new().register(local()).request(req(5, 3, true));
        let done = flow.accept(&reply_wire(5, 2)).unwrap();
        assert_eq!(done.status(), ReplyStatus::Short { requested: 3, returned: 2 });
    }
}
