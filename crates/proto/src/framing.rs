//! The `[type, size, data]` binary framing used between transmitter and
//! receiver (paper §3.5.1).
//!
//! "The format for data transmission is `[type, size, data]`. *Type* and
//! *size* fields are transmitted first, so the receiver can determine the
//! amount of memory that should be allocated to store the *data* field."
//!
//! Both header fields are little-endian `u32`. The data field carries a
//! snapshot of one status database: a `u32` record count followed by that
//! many fixed-size records of the frame's type.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::netstatus::NetPathRecord;
use crate::security::SecurityRecord;
use crate::status::ServerStatusReport;
use crate::ProtoError;

/// Which status database a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum RecordType {
    /// Server status reports (`sysdb`).
    System = 1,
    /// Network path records (`netdb`).
    Network = 2,
    /// Security records (`secdb`).
    Security = 3,
    /// Server status reports with per-record age (`sysdb` with staleness
    /// preserved across the transmitter→receiver hop).
    SystemAged = 4,
}

impl From<RecordType> for u32 {
    fn from(t: RecordType) -> u32 {
        // analyze: allow(SS-CAST-001): lossless read of a fieldless-enum discriminant (0..=3)
        t as u32
    }
}

impl RecordType {
    pub fn from_u32(v: u32) -> Result<Self, ProtoError> {
        match v {
            1 => Ok(RecordType::System),
            2 => Ok(RecordType::Network),
            3 => Ok(RecordType::Security),
            4 => Ok(RecordType::SystemAged),
            other => Err(ProtoError::UnknownType(other)),
        }
    }
}

/// One framed message: a typed, length-prefixed byte payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    pub rtype: RecordType,
    pub data: Bytes,
}

impl Frame {
    /// Header size: `type` + `size`, both `u32`.
    pub const HEADER_BYTES: usize = 8;

    /// Serialize header + payload.
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u32_le(u32::from(self.rtype));
        out.put_u32_le(size_header(self.data.len()));
        out.put_slice(&self.data);
    }

    /// Total on-wire length of this frame.
    pub fn wire_len(&self) -> usize {
        Self::HEADER_BYTES + self.data.len()
    }

    /// Try to decode one frame from the front of `buf`. Returns `Ok(None)`
    /// when more bytes are needed (stream reassembly), consuming nothing.
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Frame>, ProtoError> {
        if buf.len() < Self::HEADER_BYTES {
            return Ok(None);
        }
        let mut peek = &buf[..];
        let rtype = peek.get_u32_le();
        let size = peek.get_u32_le() as usize;
        if buf.len() < Self::HEADER_BYTES + size {
            return Ok(None);
        }
        let rtype = RecordType::from_u32(rtype)?;
        buf.advance(Self::HEADER_BYTES);
        let data = buf.split_to(size).freeze();
        Ok(Some(Frame { rtype, data }))
    }

    // ------------------------------------------------------------------
    // Snapshot payloads
    // ------------------------------------------------------------------

    /// Build a `System` frame from a database snapshot.
    pub fn system(records: &[ServerStatusReport]) -> Frame {
        let mut data = BytesMut::with_capacity(4 + records.len() * 204);
        data.put_u32_le(size_header(records.len()));
        for r in records {
            r.encode_binary(&mut data);
        }
        Frame { rtype: RecordType::System, data: data.freeze() }
    }

    /// Build a `SystemAged` frame: each report plus its age in nanoseconds
    /// at snapshot time. Plain `System` frames lose row staleness in
    /// transit (the receiver can only stamp the arrival time); this
    /// variant lets the wizard machine reconstruct each record's original
    /// report time, so its staleness-aware selection sees true ages.
    pub fn system_aged(records: &[(ServerStatusReport, u64)]) -> Frame {
        let mut data = BytesMut::with_capacity(4 + records.len() * 212);
        data.put_u32_le(size_header(records.len()));
        for (r, age_ns) in records {
            r.encode_binary(&mut data);
            data.put_u64_le(*age_ns);
        }
        Frame { rtype: RecordType::SystemAged, data: data.freeze() }
    }

    /// Build a `Network` frame from a database snapshot.
    pub fn network(records: &[NetPathRecord]) -> Frame {
        let mut data = BytesMut::with_capacity(4 + records.len() * NetPathRecord::BINARY_BYTES);
        data.put_u32_le(size_header(records.len()));
        for r in records {
            r.encode_binary(&mut data);
        }
        Frame { rtype: RecordType::Network, data: data.freeze() }
    }

    /// Build a `Security` frame from a database snapshot.
    pub fn security(records: &[SecurityRecord]) -> Frame {
        let mut data = BytesMut::with_capacity(4 + records.len() * SecurityRecord::BINARY_BYTES);
        data.put_u32_le(size_header(records.len()));
        for r in records {
            r.encode_binary(&mut data);
        }
        Frame { rtype: RecordType::Security, data: data.freeze() }
    }

    /// Decode a `System` payload.
    pub fn decode_system(&self) -> Result<Vec<ServerStatusReport>, ProtoError> {
        self.expect(RecordType::System)?;
        decode_counted(&self.data[..], ServerStatusReport::decode_binary)
    }

    /// Decode a `SystemAged` payload into `(report, age_ns)` pairs.
    pub fn decode_system_aged(&self) -> Result<Vec<(ServerStatusReport, u64)>, ProtoError> {
        self.expect(RecordType::SystemAged)?;
        decode_counted(&self.data[..], |cursor| {
            let report = ServerStatusReport::decode_binary(cursor)?;
            if cursor.remaining() < 8 {
                return Err(ProtoError::Truncated { expected: 8, got: cursor.remaining() });
            }
            Ok((report, cursor.get_u64_le()))
        })
    }

    /// Decode a `Network` payload.
    pub fn decode_network(&self) -> Result<Vec<NetPathRecord>, ProtoError> {
        self.expect(RecordType::Network)?;
        decode_counted(&self.data[..], NetPathRecord::decode_binary)
    }

    /// Decode a `Security` payload.
    pub fn decode_security(&self) -> Result<Vec<SecurityRecord>, ProtoError> {
        self.expect(RecordType::Security)?;
        decode_counted(&self.data[..], SecurityRecord::decode_binary)
    }

    fn expect(&self, want: RecordType) -> Result<(), ProtoError> {
        if self.rtype == want {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!("expected {want:?} frame, got {:?}", self.rtype)))
        }
    }
}

/// Checked `usize → u32` for header fields. Both the payload length and the
/// record count are bounded far below `u32::MAX` by construction (snapshots
/// of small in-memory databases), but a silent `as` truncation here would
/// desynchronize the stream; panicking loudly is the lesser evil.
fn size_header(n: usize) -> u32 {
    u32::try_from(n).expect("invariant: frame payload/record count fits the u32 header")
}

fn decode_counted<T, B: Buf>(
    mut cursor: B,
    decode_one: impl Fn(&mut B) -> Result<T, ProtoError>,
) -> Result<Vec<T>, ProtoError> {
    if cursor.remaining() < 4 {
        return Err(ProtoError::Truncated { expected: 4, got: cursor.remaining() });
    }
    let count = cursor.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_one(&mut cursor)?);
    }
    if cursor.has_remaining() {
        return Err(ProtoError::Malformed(format!(
            "{} trailing bytes after {} records",
            cursor.remaining(),
            count
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ip;

    fn sys_report(i: u8) -> ServerStatusReport {
        let mut r = ServerStatusReport::empty(format!("host{i}").as_str(), Ip::new(192, 168, 1, i));
        r.load1 = f64::from(i) / 10.0;
        r.mem_total = 1 << 28;
        r
    }

    #[test]
    fn frame_roundtrip_over_a_byte_stream() {
        let frame = Frame::system(&[sys_report(1), sys_report(2)]);
        let mut wire = BytesMut::new();
        frame.encode(&mut wire);
        assert_eq!(wire.len(), frame.wire_len());

        let got = Frame::decode(&mut wire).unwrap().unwrap();
        assert_eq!(got, frame);
        assert!(wire.is_empty());
        let records = got.decode_system().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].host.as_str(), "host2");
    }

    #[test]
    fn aged_system_frames_carry_per_record_ages() {
        let frame = Frame::system_aged(&[(sys_report(1), 0), (sys_report(2), 4_500_000_000)]);
        let mut wire = BytesMut::new();
        frame.encode(&mut wire);
        let got = Frame::decode(&mut wire).unwrap().unwrap();
        let records = got.decode_system_aged().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].1, 0);
        assert_eq!(records[1].0.host.as_str(), "host2");
        assert_eq!(records[1].1, 4_500_000_000);
        // Type confusion against the un-aged decoder is rejected.
        assert!(got.decode_system().is_err());
    }

    #[test]
    fn decode_waits_for_partial_frames() {
        let frame = Frame::security(&[SecurityRecord {
            host: "helene".into(),
            ip: Ip::new(192, 168, 3, 1),
            level: 2,
        }]);
        let mut wire = BytesMut::new();
        frame.encode(&mut wire);

        // Feed the stream byte by byte; nothing decodes until complete.
        let mut rx = BytesMut::new();
        let total = wire.len();
        for (i, b) in wire.iter().enumerate() {
            rx.put_u8(*b);
            let r = Frame::decode(&mut rx).unwrap();
            if i + 1 < total {
                assert!(r.is_none(), "decoded early at byte {i}");
            } else {
                assert_eq!(r.unwrap(), frame);
            }
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let f1 = Frame::system(&[sys_report(1)]);
        let f2 = Frame::network(&[NetPathRecord {
            from_monitor: Ip::new(10, 0, 0, 1),
            to_monitor: Ip::new(10, 0, 0, 2),
            delay_ms: 1.5,
            bw_mbps: 88.0,
            timestamp_ns: 7,
        }]);
        let mut wire = BytesMut::new();
        f1.encode(&mut wire);
        f2.encode(&mut wire);
        assert_eq!(Frame::decode(&mut wire).unwrap().unwrap(), f1);
        assert_eq!(Frame::decode(&mut wire).unwrap().unwrap(), f2);
        assert!(Frame::decode(&mut wire).unwrap().is_none());
    }

    #[test]
    fn unknown_type_is_an_error() {
        let mut wire = BytesMut::new();
        wire.put_u32_le(99);
        wire.put_u32_le(0);
        assert_eq!(Frame::decode(&mut wire), Err(ProtoError::UnknownType(99)));
    }

    #[test]
    fn type_confusion_is_rejected() {
        let frame = Frame::system(&[sys_report(1)]);
        assert!(frame.decode_network().is_err());
        assert!(frame.decode_security().is_err());
    }

    #[test]
    fn trailing_bytes_in_payload_are_rejected() {
        let mut data = BytesMut::new();
        data.put_u32_le(0); // zero records...
        data.put_u8(0xff); // ...but a stray byte
        let frame = Frame { rtype: RecordType::System, data: data.freeze() };
        assert!(frame.decode_system().is_err());
    }

    #[test]
    fn empty_snapshots_are_valid() {
        let frame = Frame::network(&[]);
        assert_eq!(frame.decode_network().unwrap(), vec![]);
    }
}
