//! Time for the live backend.
//!
//! The engines take time as plain `u64` nanoseconds through the
//! [`Transport`](smartsock_proto::Transport) seam, so *where* time comes
//! from is a backend policy. [`Clock::wall`] anchors at daemon start and
//! reads the OS monotonic clock; [`Clock::manual`] is a test clock the
//! interop suite advances by hand, so staleness scenarios run identically
//! to their simulated twins instead of depending on real sleeps.
//!
//! The entire crate reads wall time through this module's single read
//! point — the determinism lint (`SS-DET-001`/`SS-DET-004`) keeps any
//! other site from sneaking in a second one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[rustfmt::skip]
// analyze: allow(SS-DET-001, SS-DET-004): the live backend's one wall-clock read point; every other site takes time through Clock::now_ns
mod wall { use std::time::Instant; #[derive(Clone, Debug)] pub struct Anchor(Instant); impl Anchor { pub fn start() -> Anchor { Anchor(Instant::now()) } pub fn elapsed_ns(&self) -> u64 { u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX) } } }

/// A nanosecond clock handed to every live daemon and client.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Monotonic wall time since the clock was created.
    Wall(wall::Anchor),
    /// Test-controlled time; see [`ManualHandle`].
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A monotonic clock anchored now. Clones share the anchor, so one
    /// deployment's daemons agree on what `t = 0` means.
    pub fn wall() -> Clock {
        Clock::Wall(wall::Anchor::start())
    }

    /// A clock that only moves when the returned handle says so.
    pub fn manual() -> (Clock, ManualHandle) {
        let cell = Arc::new(AtomicU64::new(0));
        (Clock::Manual(Arc::clone(&cell)), ManualHandle(cell))
    }

    /// Nanoseconds since the clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall(anchor) => anchor.elapsed_ns(),
            Clock::Manual(cell) => cell.load(Ordering::SeqCst),
        }
    }
}

/// The writer side of a manual clock — keep it in the test, clone the
/// [`Clock`] into the daemons.
#[derive(Clone, Debug)]
pub struct ManualHandle(Arc<AtomicU64>);

impl ManualHandle {
    pub fn set_ns(&self, ns: u64) {
        self.0.store(ns, Ordering::SeqCst);
    }

    pub fn advance_secs(&self, secs: u64) {
        self.0.fetch_add(secs.saturating_mul(1_000_000_000), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_by_hand() {
        let (clock, hand) = Clock::manual();
        assert_eq!(clock.now_ns(), 0);
        hand.advance_secs(3);
        assert_eq!(clock.now_ns(), 3_000_000_000);
        hand.set_ns(7);
        assert_eq!(clock.now_ns(), 7);
    }

    #[test]
    fn wall_clock_is_monotone_and_shared_between_clones() {
        let clock = Clock::wall();
        let twin = clock.clone();
        let a = clock.now_ns();
        let b = twin.now_ns();
        assert!(b >= a);
    }
}
