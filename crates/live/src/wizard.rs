//! The combined monitor+wizard daemon on a real UDP socket.
//!
//! One background thread owns a [`WizardEngine`] — the same demux,
//! ingest, staleness, and matching core the simulated daemons run — and a
//! [`Telemetry`] sink recording the same counter/span/event names, so
//! `telemetry summary` reads a live trace exactly like a simulated one.
//!
//! The receive loop blocks in `recv_from` with **no read timeout**: a
//! stopped daemon is woken by one empty datagram to its own port (the
//! classic self-pipe trick, in UDP), so shutdown is prompt and the idle
//! daemon costs zero CPU.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use smartsock_sim::SimTime;
use smartsock_telemetry::Telemetry;
use smartsock_wizard::{Ingest, SelectPolicy, WizardEngine};

use crate::clock::Clock;
use crate::transport::{endpoint_of, UdpTransport};

/// What a stopped daemon hands back.
#[derive(Clone, Debug)]
pub struct WizardStats {
    /// User requests answered.
    pub served: u64,
    /// Probe reports ingested.
    pub reports: u64,
    /// The JSONL telemetry trace — same schema as the simulator's
    /// `Telemetry::export_jsonl`, consumable by the `telemetry` binary.
    pub trace_jsonl: String,
}

/// A monitor+wizard daemon on a background thread.
pub struct LiveWizard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reports: Arc<AtomicU64>,
    served: Arc<AtomicU64>,
    records: Arc<AtomicU64>,
    handle: Option<JoinHandle<io::Result<WizardStats>>>,
}

impl LiveWizard {
    /// Bind an ephemeral loopback port and start serving.
    pub fn spawn() -> io::Result<LiveWizard> {
        Self::spawn_on("127.0.0.1:0")
    }

    /// Bind a specific address and start serving with default policy and
    /// wall-clock time.
    pub fn spawn_on(addr: &str) -> io::Result<LiveWizard> {
        Self::spawn_with(addr, SelectPolicy::default(), Clock::wall())
    }

    /// Bind `addr` and serve with an explicit staleness/ranking policy and
    /// clock. A [`Clock::manual`] here lets tests replay time-dependent
    /// scenarios deterministically.
    pub fn spawn_with(addr: &str, policy: SelectPolicy, clock: Clock) -> io::Result<LiveWizard> {
        let sock = UdpSocket::bind(addr)?;
        let addr = sock.local_addr()?;
        let ip = endpoint_of(addr)
            .ok_or_else(|| io::Error::other("live wizard requires an IPv4 bind address"))?
            .ip;
        let engine = WizardEngine::new(ip, policy);
        let stop = Arc::new(AtomicBool::new(false));
        let reports = Arc::new(AtomicU64::new(0));
        let served = Arc::new(AtomicU64::new(0));
        let records = Arc::new(AtomicU64::new(0));
        let shared = Shared {
            stop: Arc::clone(&stop),
            reports: Arc::clone(&reports),
            served: Arc::clone(&served),
            records: Arc::clone(&records),
        };
        let handle = std::thread::spawn(move || serve(sock, engine, clock, shared));
        Ok(LiveWizard { addr, stop, reports, served, records, handle: Some(handle) })
    }

    /// Where probes report and clients ask.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of live server records (post the most recent sweep).
    pub fn live_servers(&self) -> usize {
        self.records.load(Ordering::SeqCst) as usize
    }

    /// Probe reports ingested so far.
    pub fn reports_ingested(&self) -> u64 {
        self.reports.load(Ordering::SeqCst)
    }

    /// User requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Stop the daemon promptly and collect its stats and trace.
    pub fn shutdown(mut self) -> io::Result<WizardStats> {
        self.stop.store(true, Ordering::SeqCst);
        wake(self.addr);
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| io::Error::other("wizard thread panicked"))?,
            None => Err(io::Error::other("wizard already stopped")),
        }
    }
}

impl Drop for LiveWizard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            wake(self.addr);
            let _ = h.join();
        }
    }
}

/// Nudge a blocked `recv_from` with an empty datagram. Best-effort: if
/// the send fails the join below still completes once any datagram lands.
fn wake(addr: SocketAddr) {
    if let Ok(sock) = UdpSocket::bind("127.0.0.1:0") {
        let _ = sock.send_to(&[], addr);
    }
}

struct Shared {
    stop: Arc<AtomicBool>,
    reports: Arc<AtomicU64>,
    served: Arc<AtomicU64>,
    records: Arc<AtomicU64>,
}

fn serve(
    sock: UdpSocket,
    mut engine: WizardEngine,
    clock: Clock,
    shared: Shared,
) -> io::Result<WizardStats> {
    // Telemetry is single-owner by design (the sim hangs it on the
    // scheduler); here the daemon thread owns it and exports at shutdown.
    let mut tel = Telemetry::new();
    let host = engine.endpoint().ip.to_string();
    let mut buf = [0u8; 4096];
    loop {
        let (n, from) = match sock.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                return Err(e);
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let now = clock.now_ns();
        tel.set_now(now);
        // Opportunistic stale sweep: every inbound datagram advances the
        // expiry horizon, so dead servers stop being offered without a
        // timer thread. (`select` independently skips stale records, so
        // sweep cadence affects bookkeeping, not matching.)
        let evicted = engine.sweep(SimTime(now));
        if !evicted.is_empty() {
            tel.counter_add("wizard-stale-evictions", evicted.len() as u64);
            for ip in &evicted {
                tel.event(
                    "status-db-expired",
                    &host,
                    &[("db", "wizard-sysdb"), ("server", &ip.to_string())],
                );
            }
        }
        let Some(payload) = buf.get(..n) else { continue };
        if payload.is_empty() {
            // A wakeup nudge that raced a concurrent stop; nothing to do.
            continue;
        }
        let Some(from_ep) = endpoint_of(from) else { continue };
        let is_report =
            payload.starts_with(smartsock_proto::ServerStatusReport::ASCII_MAGIC.as_bytes());
        let span = if is_report { None } else { Some(tel.span_start("wizard-match", &host)) };
        let outcome = {
            let mut t = UdpTransport::new(&sock, &clock);
            engine.handle(&mut t, from_ep, payload)
        };
        if let Some(span) = span {
            tel.span_end(span);
        }
        match outcome {
            Ok(Ingest::Report(_ip)) => {
                tel.counter_incr("sysmon-reports");
                tel.counter_add("sysmon-bytes", n as u64);
                shared.reports.fetch_add(1, Ordering::SeqCst);
            }
            Ok(Ingest::BadReport(_)) => tel.counter_incr("sysmon-bad-reports"),
            Ok(Ingest::Replied { reply, to: _ }) => {
                tel.counter_incr("wizard-requests");
                tel.counter_incr("wizard-replies");
                tel.counter_add("wizard-reply-servers", reply.servers.len() as u64);
                shared.served.fetch_add(1, Ordering::SeqCst);
            }
            Ok(Ingest::BadRequest) => tel.counter_incr("wizard-bad-requests"),
            // A reply that failed to send: the client's retry loop covers
            // it, exactly as it covers a datagram lost on the wire.
            Err(_e) => tel.counter_incr("wizard-reply-send-errors"),
        }
        shared.records.store(engine.live_servers() as u64, Ordering::SeqCst);
    }
    Ok(WizardStats {
        served: shared.served.load(Ordering::SeqCst),
        reports: shared.reports.load(Ordering::SeqCst),
        trace_jsonl: tel.export_jsonl(),
    })
}
