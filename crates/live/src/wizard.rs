//! The combined monitor+wizard daemon on a real UDP socket.
//!
//! One background thread owns a [`WizardEngine`] — the same demux,
//! ingest, staleness, and matching core the simulated daemons run — and a
//! [`Telemetry`] sink recording the same counter/span/event names, so
//! `telemetry summary` reads a live trace exactly like a simulated one.
//!
//! The receive loop blocks in `recv_from` with **no read timeout**: a
//! stopped daemon is woken by one empty datagram to its own port (the
//! classic self-pipe trick, in UDP), so shutdown is prompt and the idle
//! daemon costs zero CPU.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use smartsock_proto::{StatsCount, StatsHist, StatsReply, StatsRequest};
use smartsock_sim::SimTime;
use smartsock_telemetry::{AccumSink, RollupSink, Sink, StreamSink, TeeSink, Telemetry};
use smartsock_wizard::{Ingest, SelectPolicy, WizardEngine};

use crate::clock::Clock;
use crate::transport::{endpoint_of, UdpTransport};

/// How often the daemon self-reports (a `daemon-heartbeat` event with
/// own-process procfs gauges). Checked opportunistically on every inbound
/// datagram — no timer thread; an idle daemon emits no heartbeats, which
/// keeps the idle-costs-zero-CPU property. The first datagram after the
/// interval elapses carries the beat, and a `smartsockd stats` query is
/// itself a datagram, so polling the daemon also freshens it.
const HEARTBEAT_INTERVAL_NS: u64 = 5_000_000_000;

/// Line-buffer capacity of the streaming trace sink (bytes).
const STREAM_CAP: usize = 4096;

/// What a stopped daemon hands back.
#[derive(Clone, Debug)]
pub struct WizardStats {
    /// User requests answered.
    pub served: u64,
    /// Probe reports ingested.
    pub reports: u64,
    /// Telemetry records dropped by the sink's backpressure policy
    /// (always 0 for the default in-memory sink; a streaming sink whose
    /// file write failed counts every record it could not persist).
    pub dropped: u64,
    /// The JSONL telemetry trace — same schema as the simulator's
    /// `Telemetry::export_jsonl`, consumable by the `telemetry` binary.
    /// When the daemon streams its trace to a file instead, this holds
    /// only the summary lines (counters/gauges/hists); the records are in
    /// the streamed file.
    pub trace_jsonl: String,
}

/// Deferred sink construction: built on the daemon thread because sinks
/// (telemetry is single-threaded by design) are not `Send`, while the
/// pieces a factory captures — a `File`, a policy — are.
type SinkFactory = Box<dyn FnOnce() -> Box<dyn Sink> + Send>;

/// A monitor+wizard daemon on a background thread.
pub struct LiveWizard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reports: Arc<AtomicU64>,
    served: Arc<AtomicU64>,
    records: Arc<AtomicU64>,
    handle: Option<JoinHandle<io::Result<WizardStats>>>,
}

impl LiveWizard {
    /// Bind an ephemeral loopback port and start serving.
    pub fn spawn() -> io::Result<LiveWizard> {
        Self::spawn_on("127.0.0.1:0")
    }

    /// Bind a specific address and start serving with default policy and
    /// wall-clock time.
    pub fn spawn_on(addr: &str) -> io::Result<LiveWizard> {
        Self::spawn_with(addr, SelectPolicy::default(), Clock::wall())
    }

    /// Bind `addr` and serve with an explicit staleness/ranking policy and
    /// clock. A [`Clock::manual`] here lets tests replay time-dependent
    /// scenarios deterministically.
    ///
    /// The default sink tees an accumulator (the full trace returned by
    /// [`LiveWizard::shutdown`]) with a rollup, so a running daemon can
    /// answer `smartsockd stats` snapshots at any time.
    pub fn spawn_with(addr: &str, policy: SelectPolicy, clock: Clock) -> io::Result<LiveWizard> {
        Self::spawn_sink(
            addr,
            policy,
            clock,
            Box::new(|| {
                Box::new(TeeSink::new(Box::new(AccumSink::new()), Box::new(RollupSink::new())))
            }),
        )
    }

    /// Like [`LiveWizard::spawn_with`], but stream the trace to `trace`
    /// incrementally instead of accumulating it: records hit the file as
    /// they happen (backpressure policy: a failed write drops records and
    /// counts them, never blocking the serve loop). The rollup side stays,
    /// so live stats queries still work.
    pub fn spawn_streaming(
        addr: &str,
        policy: SelectPolicy,
        clock: Clock,
        trace: &Path,
    ) -> io::Result<LiveWizard> {
        let file = std::fs::File::create(trace)?;
        Self::spawn_sink(
            addr,
            policy,
            clock,
            Box::new(move || {
                Box::new(TeeSink::new(
                    Box::new(StreamSink::new(Box::new(file), STREAM_CAP)),
                    Box::new(RollupSink::new()),
                ))
            }),
        )
    }

    fn spawn_sink(
        addr: &str,
        policy: SelectPolicy,
        clock: Clock,
        make_sink: SinkFactory,
    ) -> io::Result<LiveWizard> {
        let sock = UdpSocket::bind(addr)?;
        let addr = sock.local_addr()?;
        let ip = endpoint_of(addr)
            .ok_or_else(|| io::Error::other("live wizard requires an IPv4 bind address"))?
            .ip;
        let engine = WizardEngine::new(ip, policy);
        let stop = Arc::new(AtomicBool::new(false));
        let reports = Arc::new(AtomicU64::new(0));
        let served = Arc::new(AtomicU64::new(0));
        let records = Arc::new(AtomicU64::new(0));
        let shared = Shared {
            stop: Arc::clone(&stop),
            reports: Arc::clone(&reports),
            served: Arc::clone(&served),
            records: Arc::clone(&records),
        };
        let handle = std::thread::spawn(move || serve(sock, engine, clock, shared, make_sink));
        Ok(LiveWizard { addr, stop, reports, served, records, handle: Some(handle) })
    }

    /// Where probes report and clients ask.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of live server records (post the most recent sweep).
    pub fn live_servers(&self) -> usize {
        self.records.load(Ordering::SeqCst) as usize
    }

    /// Probe reports ingested so far.
    pub fn reports_ingested(&self) -> u64 {
        self.reports.load(Ordering::SeqCst)
    }

    /// User requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Stop the daemon promptly and collect its stats and trace.
    pub fn shutdown(mut self) -> io::Result<WizardStats> {
        self.stop.store(true, Ordering::SeqCst);
        wake(self.addr);
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| io::Error::other("wizard thread panicked"))?,
            None => Err(io::Error::other("wizard already stopped")),
        }
    }
}

impl Drop for LiveWizard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            wake(self.addr);
            let _ = h.join();
        }
    }
}

/// Nudge a blocked `recv_from` with an empty datagram. Best-effort: if
/// the send fails the join below still completes once any datagram lands.
fn wake(addr: SocketAddr) {
    if let Ok(sock) = UdpSocket::bind("127.0.0.1:0") {
        let _ = sock.send_to(&[], addr);
    }
}

struct Shared {
    stop: Arc<AtomicBool>,
    reports: Arc<AtomicU64>,
    served: Arc<AtomicU64>,
    records: Arc<AtomicU64>,
}

fn serve(
    sock: UdpSocket,
    mut engine: WizardEngine,
    clock: Clock,
    shared: Shared,
    make_sink: SinkFactory,
) -> io::Result<WizardStats> {
    // Telemetry is single-owner by design (the sim hangs it on the
    // scheduler); here the daemon thread owns it and exports at shutdown.
    let mut tel = Telemetry::with_sink(make_sink());
    let host = engine.endpoint().ip.to_string();
    let mut buf = [0u8; 4096];
    let mut last_heartbeat: Option<u64> = None;
    loop {
        let (n, from) = match sock.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                return Err(e);
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let now = clock.now_ns();
        tel.set_now(now);
        // Opportunistic stale sweep: every inbound datagram advances the
        // expiry horizon, so dead servers stop being offered without a
        // timer thread. (`select` independently skips stale records, so
        // sweep cadence affects bookkeeping, not matching.)
        let evicted = engine.sweep(SimTime(now));
        if !evicted.is_empty() {
            tel.counter_add("wizard-stale-evictions", evicted.len() as u64);
            for ip in &evicted {
                tel.event(
                    "status-db-expired",
                    &host,
                    &[("db", "wizard-sysdb"), ("server", &ip.to_string())],
                );
            }
        }
        // Sonar-style self-report: every so often the daemon describes
        // itself in its own trace, same schema a probe would send about it.
        if last_heartbeat.is_none_or(|at| now.saturating_sub(at) >= HEARTBEAT_INTERVAL_NS) {
            last_heartbeat = Some(now);
            heartbeat(&mut tel, &host, &shared);
        }
        let Some(payload) = buf.get(..n) else { continue };
        if payload.is_empty() {
            // A wakeup nudge that raced a concurrent stop; nothing to do.
            continue;
        }
        // `smartsockd stats` snapshot query: answered out-of-band, before
        // the engine ever sees the payload, so a monitoring poller cannot
        // perturb protocol handling.
        if payload.starts_with(StatsRequest::ASCII_MAGIC.as_bytes()) {
            tel.counter_incr("wizard-stats-requests");
            if let Ok(q) = StatsRequest::decode(payload) {
                let reply = stats_snapshot(&tel, q.seq, now);
                let _ = sock.send_to(&reply.encode(), from);
            }
            continue;
        }
        let Some(from_ep) = endpoint_of(from) else { continue };
        let is_report =
            payload.starts_with(smartsock_proto::ServerStatusReport::ASCII_MAGIC.as_bytes());
        let span = if is_report { None } else { Some(tel.span_start("wizard-match", &host)) };
        let outcome = {
            let mut t = UdpTransport::new(&sock, &clock);
            engine.handle(&mut t, from_ep, payload)
        };
        if let Some(span) = span {
            tel.span_end(span);
        }
        match outcome {
            Ok(Ingest::Report(_ip)) => {
                tel.counter_incr("sysmon-reports");
                tel.counter_add("sysmon-bytes", n as u64);
                shared.reports.fetch_add(1, Ordering::SeqCst);
            }
            Ok(Ingest::BadReport(_)) => tel.counter_incr("sysmon-bad-reports"),
            Ok(Ingest::Replied { reply, to: _ }) => {
                tel.counter_incr("wizard-requests");
                tel.counter_incr("wizard-replies");
                tel.counter_add("wizard-reply-servers", reply.servers.len() as u64);
                shared.served.fetch_add(1, Ordering::SeqCst);
            }
            Ok(Ingest::BadRequest) => tel.counter_incr("wizard-bad-requests"),
            // A reply that failed to send: the client's retry loop covers
            // it, exactly as it covers a datagram lost on the wire.
            Err(_e) => tel.counter_incr("wizard-reply-send-errors"),
        }
        shared.records.store(engine.live_servers() as u64, Ordering::SeqCst);
    }
    // Flush a streaming sink's buffer and write its summary tail before
    // snapshotting the trace for the caller.
    tel.finish();
    Ok(WizardStats {
        served: shared.served.load(Ordering::SeqCst),
        reports: shared.reports.load(Ordering::SeqCst),
        dropped: tel.dropped(),
        trace_jsonl: tel.export_jsonl(),
    })
}

/// Emit the periodic self-report: a `daemon-heartbeat` event carrying the
/// serve counters, plus own-host gauges sampled from the real `/proc`
/// through the same parsers the probe uses. Platforms without a parseable
/// procfs still get the event, just not the gauges.
fn heartbeat(tel: &mut Telemetry, host: &str, shared: &Shared) {
    tel.counter_incr("daemon-heartbeats");
    let served = shared.served.load(Ordering::SeqCst).to_string();
    let reports = shared.reports.load(Ordering::SeqCst).to_string();
    tel.event("daemon-heartbeat", host, &[("served", &served), ("reports", &reports)]);
    if let Ok(s) = crate::probe::sample_proc(Path::new("/proc"), "lo") {
        // Loads are centi-scaled: gauges are integers by design.
        #[allow(clippy::cast_possible_truncation)]
        tel.gauge_set("daemon-load1-centi", host, (s.load1 * 100.0) as i64);
        tel.gauge_set("daemon-mem-free-bytes", host, i64::try_from(s.mem.free).unwrap_or(i64::MAX));
        tel.gauge_set(
            "daemon-mem-total-bytes",
            host,
            i64::try_from(s.mem.total).unwrap_or(i64::MAX),
        );
    }
}

/// Build the `smartsockd stats` reply: process-wide counters under the
/// `daemon` scope, then the rollup's per-host/per-subnet counters and
/// histogram summaries. Sorted-map iteration keeps row order stable, so
/// truncation (if the frame would overflow a datagram) cuts the tail
/// deterministically.
fn stats_snapshot(tel: &Telemetry, seq: u32, now_ns: u64) -> StatsReply {
    let mut counts = Vec::new();
    {
        let counters = tel.shared_counters();
        for (name, value) in counters.borrow().iter() {
            counts.push(StatsCount {
                scope: "daemon".to_owned(),
                name: name.clone(),
                value: *value,
            });
        }
    }
    let mut hists = Vec::new();
    let mut records = 0;
    if let Some(r) = tel.rollup() {
        records = r.records();
        for (scope, name, value) in r.counts() {
            counts.push(StatsCount { scope: scope.to_owned(), name: name.to_owned(), value });
        }
        for (scope, name, s) in r.hists() {
            hists.push(StatsHist {
                scope: scope.to_owned(),
                name: name.to_owned(),
                count: s.count,
                p50_ns: s.p50,
                p95_ns: s.p95,
                p99_ns: s.p99,
            });
        }
    }
    StatsReply { seq, now_ns, records, dropped: tel.dropped(), truncated: false, counts, hists }
}
