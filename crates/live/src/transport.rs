//! The OS-socket implementation of the backend-neutral
//! [`Transport`](smartsock_proto::Transport) seam, plus the address
//! bridge between protocol endpoints and real socket addresses.
//!
//! Protocol [`Endpoint`]s are plain `(ip, port)` pairs, and the live
//! backend runs over IPv4 (the 2005 testbed knew nothing else), so the
//! mapping is a bijection: no directory, no translation table.

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};

use smartsock_proto::{Endpoint, Ip, Transport, TransportError};

use crate::clock::Clock;

/// The protocol endpoint a real datagram arrived from (IPv4 only).
pub fn endpoint_of(addr: SocketAddr) -> Option<Endpoint> {
    match addr {
        SocketAddr::V4(v4) => {
            let [a, b, c, d] = v4.ip().octets();
            Some(Endpoint::new(Ip::new(a, b, c, d), v4.port()))
        }
        SocketAddr::V6(_) => None,
    }
}

/// The real socket address a protocol endpoint designates.
pub fn sockaddr_of(ep: Endpoint) -> SocketAddr {
    let [a, b, c, d] = ep.ip.octets();
    SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(a, b, c, d), ep.port))
}

/// Borrow of a bound socket plus the deployment clock for the duration of
/// one engine call — the live twin of `smartsock_net::SimTransport`.
pub struct UdpTransport<'a> {
    sock: &'a UdpSocket,
    clock: &'a Clock,
}

impl<'a> UdpTransport<'a> {
    pub fn new(sock: &'a UdpSocket, clock: &'a Clock) -> UdpTransport<'a> {
        UdpTransport { sock, clock }
    }
}

impl Transport for UdpTransport<'_> {
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn send(
        &mut self,
        _from: Endpoint,
        to: Endpoint,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        // The kernel stamps the source address from the bound socket;
        // `_from` is the engine's protocol-level identity, which the wire
        // format never carries.
        match self.sock.send_to(payload, sockaddr_of(to)) {
            Ok(_) => Ok(()),
            Err(e) => Err(TransportError(format!("udp send to {to}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_sockaddr_bijection_on_loopback() {
        let ep = Endpoint::new(Ip::new(127, 0, 0, 1), 41999);
        assert_eq!(endpoint_of(sockaddr_of(ep)), Some(ep));
        let addr: SocketAddr = "10.1.2.3:1120".parse().unwrap();
        assert_eq!(sockaddr_of(endpoint_of(addr).unwrap()), addr);
    }

    #[test]
    fn udp_transport_sends_real_datagrams() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let clock = Clock::wall();
        let mut t = UdpTransport::new(&tx, &clock);
        let dst = endpoint_of(rx.local_addr().unwrap()).unwrap();
        t.send(Endpoint::new(Ip::new(127, 0, 0, 1), 1120), dst, b"ping").unwrap();
        let mut buf = [0u8; 16];
        let (n, _) = rx.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }
}
