//! `smartsockd` — the Smart socket control plane over real UDP sockets.
//!
//! The operational surface of the live backend (`smartsock-live`):
//!
//! ```text
//! smartsockd wizard --bind 127.0.0.1:1120 [--trace PATH | --stream-trace PATH]
//!     Run the combined monitor+wizard daemon until stdin closes; with
//!     --trace, write the telemetry JSONL trace on shutdown (readable by
//!     the `telemetry` query binary); with --stream-trace, stream records
//!     to PATH as they happen (tail with `telemetry tail --follow`).
//!
//! smartsockd stats --wizard 127.0.0.1:1120 [--timeout-ms N] [--json]
//!     Query a running daemon for its live telemetry snapshot: rollup
//!     counters per host/subnet, histogram quantiles, dropped-record
//!     count — without stopping the daemon.
//!
//! smartsockd probe --wizard 127.0.0.1:1120 --host helene --ip 192.168.3.10 \
//!                  [--proc-root /proc] [--iface eth0] \
//!                  [--watch SECS] [--count N] \
//!                  [--cpu-free 0.95] [--mem-free-mb 200] [--load1 0.1] [--services compute,file]
//!     Send status reports. With --proc-root the probe samples the real
//!     procfs through the shared differentiation engine; without it the
//!     report is synthesized from the flags. --watch repeats every SECS
//!     (until --count reports, or forever).
//!
//! smartsockd request --wizard 127.0.0.1:1120 --servers 2 [--req REQ | --file PATH] \
//!                    [--timeout-ms N] [--retries N] [--json]
//!     Issue a user request; prints the selected endpoints one per line,
//!     or a single JSON object with --json.
//! ```
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use smartsock_live::{live_request, query_stats, send_live_report, Clock, LiveProbe, LiveWizard};
use smartsock_probe::ProbeIdentity;
use smartsock_proto::{Ip, RequestOption, ServerStatusReport, ServiceMask, UserRequest};
use smartsock_wizard::SelectPolicy;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = Flags::parse(rest);
    let result = match cmd.as_str() {
        "wizard" => cmd_wizard(&flags),
        "probe" => cmd_probe(&flags),
        "request" => cmd_request(&flags),
        "stats" => cmd_stats(&flags),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: smartsockd <wizard|probe|request|stats> [flags]\n\
         \n  wizard  --bind ADDR [--trace PATH | --stream-trace PATH]\
         \n  probe   --wizard ADDR --host NAME --ip A.B.C.D [--proc-root PATH] [--iface IF]\
         \n          [--watch SECS] [--count N]\
         \n          [--cpu-free F] [--mem-free-mb N] [--load1 F] [--services a,b]\
         \n  request --wizard ADDR --servers N [--req TEXT | --file PATH]\
         \n          [--timeout-ms N] [--retries N] [--json]\
         \n  stats   --wizard ADDR [--timeout-ms N] [--retries N] [--json]"
    );
    ExitCode::from(2)
}

/// Tiny `--key value` flag parser (`--json`-style booleans take no value,
/// listed in `UNARY`).
struct Flags(Vec<(String, String)>);

const UNARY: &[&str] = &["json"];

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut out = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(k) = it.next() {
            if let Some(name) = k.strip_prefix("--") {
                let v = if UNARY.contains(&name) {
                    String::new()
                } else {
                    it.next().cloned().unwrap_or_default()
                };
                out.push((name.to_owned(), v));
            }
        }
        Flags(out)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name} value {v:?}")),
        }
    }
}

fn cmd_wizard(flags: &Flags) -> Result<(), String> {
    let bind = flags.get("bind").unwrap_or("127.0.0.1:1120");
    let wiz = match flags.get("stream-trace") {
        Some(path) => LiveWizard::spawn_streaming(
            bind,
            SelectPolicy::default(),
            Clock::wall(),
            std::path::Path::new(path),
        )
        .map_err(|e| e.to_string())?,
        None => LiveWizard::spawn_on(bind).map_err(|e| e.to_string())?,
    };
    println!("smartsockd wizard listening on {}", wiz.addr());
    println!("press ENTER (or close stdin) to stop");
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    let stats = wiz.shutdown().map_err(|e| e.to_string())?;
    if let Some(path) = flags.get("trace") {
        std::fs::write(path, &stats.trace_jsonl).map_err(|e| e.to_string())?;
        println!("trace written to {path}");
    }
    if stats.dropped > 0 {
        eprintln!("warning: streaming sink dropped {} record(s)", stats.dropped);
    }
    println!("ingested {} reports", stats.reports);
    println!("served {} requests", stats.served);
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let wizard: SocketAddr =
        flags.require("wizard")?.parse().map_err(|_| "bad --wizard address".to_owned())?;
    let timeout = Duration::from_millis(flags.get_parsed("timeout-ms", 1000u64)?);
    let retries: u32 = flags.get_parsed("retries", 2u32)?;
    let seq = std::process::id() ^ 0x57a7_0000;
    let reply = query_stats(wizard, seq, timeout, retries).map_err(|e| e.to_string())?;
    if flags.has("json") {
        let mut counts = String::new();
        for (i, c) in reply.counts.iter().enumerate() {
            if i > 0 {
                counts.push(',');
            }
            counts.push_str(&format!(
                "{{\"scope\":\"{}\",\"name\":\"{}\",\"value\":{}}}",
                c.scope, c.name, c.value
            ));
        }
        let mut hists = String::new();
        for (i, h) in reply.hists.iter().enumerate() {
            if i > 0 {
                hists.push(',');
            }
            hists.push_str(&format!(
                "{{\"scope\":\"{}\",\"name\":\"{}\",\"count\":{},\
                 \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                h.scope, h.name, h.count, h.p50_ns, h.p95_ns, h.p99_ns
            ));
        }
        println!(
            "{{\"now_ns\":{},\"records\":{},\"dropped\":{},\"truncated\":{},\
             \"counts\":[{counts}],\"hists\":[{hists}]}}",
            reply.now_ns, reply.records, reply.dropped, reply.truncated
        );
        return Ok(());
    }
    println!(
        "snapshot at {} ns: {} records, {} dropped",
        reply.now_ns, reply.records, reply.dropped
    );
    if reply.truncated {
        println!("(rows truncated to fit one datagram)");
    }
    println!("{:<28} {:<32} {:>12}", "scope", "name", "value");
    for c in &reply.counts {
        println!("{:<28} {:<32} {:>12}", c.scope, c.name, c.value);
    }
    if !reply.hists.is_empty() {
        println!(
            "{:<28} {:<32} {:>8} {:>12} {:>12} {:>12}",
            "scope", "name", "count", "p50-ns", "p95-ns", "p99-ns"
        );
        for h in &reply.hists {
            println!(
                "{:<28} {:<32} {:>8} {:>12} {:>12} {:>12}",
                h.scope, h.name, h.count, h.p50_ns, h.p95_ns, h.p99_ns
            );
        }
    }
    Ok(())
}

fn parse_services(flags: &Flags) -> Result<ServiceMask, String> {
    let mut mask = ServiceMask::default();
    if let Some(services) = flags.get("services") {
        for class in services.split(',').filter(|c| !c.is_empty()) {
            mask |= ServiceMask::by_name(class)
                .ok_or_else(|| format!("unknown service class {class:?}"))?;
        }
    }
    Ok(mask)
}

fn cmd_probe(flags: &Flags) -> Result<(), String> {
    let wizard: SocketAddr =
        flags.require("wizard")?.parse().map_err(|_| "bad --wizard address".to_owned())?;
    let host = flags.require("host")?;
    let ip: Ip = flags.require("ip")?.parse().map_err(|e| format!("{e}"))?;
    let watch_secs: u64 = flags.get_parsed("watch", 0u64)?;
    let count: u64 = flags.get_parsed("count", if watch_secs > 0 { u64::MAX } else { 1 })?;
    let interval = Duration::from_secs(watch_secs.max(1));
    // The pacing channel: nothing ever sends, so `recv_timeout` is an
    // interruptible sleep that needs no wall-clock reads here.
    let (_pace_tx, pace_rx) = mpsc::channel::<()>();

    if let Some(root) = flags.get("proc-root") {
        // Real sampling through the shared differentiation engine.
        let id = ProbeIdentity {
            host: host.into(),
            ip,
            bogomips: flags.get_parsed("bogomips", 3394.76f64)?,
            iface: flags.get("iface").unwrap_or("eth0").to_owned(),
            services: parse_services(flags)?,
        };
        let mut probe = LiveProbe::new(wizard, id, Clock::wall())
            .map_err(|e| e.to_string())?
            .with_proc_root(root);
        if watch_secs == 0 {
            let bytes = probe.report_once().map_err(|e| e.to_string())?;
            println!("sent {bytes} byte report for {host} ({ip})");
        } else {
            let sent = probe.watch(interval, count, &pace_rx).map_err(|e| e.to_string())?;
            println!("sent {sent} reports for {host} ({ip})");
        }
        return Ok(());
    }

    // Synthetic mode: the report is whatever the flags claim.
    let mut report = ServerStatusReport::empty(host, ip);
    report.cpu_idle = flags.get_parsed("cpu-free", 0.95f64)?;
    report.cpu_user = (1.0 - report.cpu_idle).max(0.0);
    report.load1 = flags.get_parsed("load1", 0.1f64)?;
    report.load5 = report.load1;
    report.load15 = report.load1;
    report.mem_total = 256 << 20;
    report.mem_free = flags.get_parsed("mem-free-mb", 180u64)? << 20;
    report.mem_used = report.mem_total - report.mem_free;
    report.bogomips = flags.get_parsed("bogomips", 3394.76f64)?;
    report.services = parse_services(flags)?;
    let clock = Clock::wall();
    let mut sent = 0u64;
    loop {
        report.timestamp_ns = clock.now_ns();
        send_live_report(wizard, &report).map_err(|e| e.to_string())?;
        sent += 1;
        if watch_secs == 0 || sent >= count {
            break;
        }
        match pace_rx.recv_timeout(interval) {
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    if sent == 1 {
        println!("sent {} byte report for {host} ({ip})", report.encode_ascii().len());
    } else {
        println!("sent {sent} reports for {host} ({ip})");
    }
    Ok(())
}

fn cmd_request(flags: &Flags) -> Result<(), String> {
    let wizard: SocketAddr =
        flags.require("wizard")?.parse().map_err(|_| "bad --wizard address".to_owned())?;
    let servers: u16 = flags.get_parsed("servers", 1u16)?;
    let detail = match (flags.get("req"), flags.get("file")) {
        (Some(req), _) => req.to_owned(),
        (None, Some(path)) => std::fs::read_to_string(path).map_err(|e| e.to_string())?,
        (None, None) => String::new(),
    };
    let timeout = Duration::from_millis(flags.get_parsed("timeout-ms", 1000u64)?);
    let retries: u32 = flags.get_parsed("retries", 2u32)?;
    let req = UserRequest {
        seq: std::process::id() ^ 0x5eed_0000,
        server_num: servers,
        option: RequestOption::DEFAULT,
        detail,
    };
    let reply = live_request(wizard, &req, timeout, retries).map_err(|e| e.to_string())?;
    if flags.has("json") {
        let eps: Vec<String> = reply.servers.iter().map(|ep| format!("\"{ep}\"")).collect();
        println!("{{\"seq\":{},\"servers\":[{}]}}", reply.seq, eps.join(","));
        return Ok(());
    }
    if reply.servers.is_empty() {
        eprintln!("no server satisfies the requirement");
        return Err("empty reply".to_owned());
    }
    for ep in reply.servers {
        println!("{ep}");
    }
    Ok(())
}
