//! A socket-level fault shim: a UDP relay between client and wizard that
//! drops a configured number of datagrams in each direction.
//!
//! This is the live counterpart of `smartsock-faults`' datagram-loss
//! semantics (`FaultKind::LossSpike` and friends): the interop suite
//! parks the shim between a [`LiveSock`](crate::client::LiveSock) and a
//! [`LiveWizard`](crate::wizard::LiveWizard) to prove the client's
//! retransmit loop recovers over real sockets, deterministically —
//! "drop the first N" instead of coin flips.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Deterministic loss budgets, counted per direction from shim start.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShimPolicy {
    /// Drop the first N client→wizard datagrams (requests).
    pub drop_requests: u32,
    /// Drop the first N wizard→client datagrams (replies).
    pub drop_replies: u32,
}

impl ShimPolicy {
    /// Pass everything through.
    pub fn transparent() -> ShimPolicy {
        ShimPolicy::default()
    }
}

/// A relay for one client at a time: datagrams from anyone but the wizard
/// are forwarded to the wizard, and the sender becomes the reply target.
pub struct FaultShim {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl FaultShim {
    /// Bind an ephemeral loopback port relaying toward `wizard`.
    pub fn spawn(wizard: SocketAddr, policy: ShimPolicy) -> io::Result<FaultShim> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        let addr = sock.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let (stop2, fwd2, drop2) =
            (Arc::clone(&stop), Arc::clone(&forwarded), Arc::clone(&dropped));
        let handle = std::thread::spawn(move || relay(sock, wizard, policy, stop2, fwd2, drop2));
        Ok(FaultShim { addr, stop, forwarded, dropped, handle: Some(handle) })
    }

    /// The address clients should treat as the wizard.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Datagrams passed through, both directions.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::SeqCst)
    }

    /// Datagrams eaten by the loss budgets.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Stop the relay promptly.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        wake(self.addr);
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| io::Error::other("shim thread panicked"))?,
            None => Ok(()),
        }
    }
}

impl Drop for FaultShim {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            wake(self.addr);
            let _ = h.join();
        }
    }
}

fn wake(addr: SocketAddr) {
    if let Ok(sock) = UdpSocket::bind("127.0.0.1:0") {
        let _ = sock.send_to(&[], addr);
    }
}

fn relay(
    sock: UdpSocket,
    wizard: SocketAddr,
    policy: ShimPolicy,
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
) -> io::Result<()> {
    let mut buf = [0u8; 4096];
    let mut client: Option<SocketAddr> = None;
    let mut requests_to_drop = policy.drop_requests;
    let mut replies_to_drop = policy.drop_replies;
    loop {
        let (n, from) = match sock.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                return Err(e);
            }
        };
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(payload) = buf.get(..n) else { continue };
        if payload.is_empty() {
            continue;
        }
        if from == wizard {
            if replies_to_drop > 0 {
                replies_to_drop -= 1;
                dropped.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            if let Some(client) = client {
                sock.send_to(payload, client)?;
                forwarded.fetch_add(1, Ordering::SeqCst);
            }
        } else {
            client = Some(from);
            if requests_to_drop > 0 {
                requests_to_drop -= 1;
                dropped.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            sock.send_to(payload, wizard)?;
            forwarded.fetch_add(1, Ordering::SeqCst);
        }
    }
}
