//! The live client: the §3.6.2 request loop over a real UDP socket,
//! shaped by the compile-time protocol state machine.
//!
//! [`LiveSock`] wraps [`RequestFlow`] — the same typestate the simulated
//! client API uses — around an OS socket. Sequence violations (asking
//! before registering, reading servers before a reply) are compile
//! errors, not runtime surprises; the proofs live as `compile_fail`
//! doctests on `smartsock_proto::typestate`.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use smartsock_proto::typestate::{Connected, Registered, Requested};
use smartsock_proto::{
    Endpoint, FlowError, ReplyStatus, RequestFlow, ServerStatusReport, StatsReply, StatsRequest,
    UserRequest, WizardReply,
};

use crate::transport::{endpoint_of, sockaddr_of};

/// Why a request did not reach the connected phase.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure.
    Io(io::Error),
    /// Every attempt timed out without a usable reply.
    TimedOut { attempts: u32 },
    /// The wizard answered, but the reply rejects the request (empty, or
    /// short with `accept_fewer` unset).
    Rejected(FlowError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "socket error: {e}"),
            RequestError::TimedOut { attempts } => {
                write!(f, "wizard did not reply within {attempts} attempts")
            }
            RequestError::Rejected(e) => write!(f, "wizard rejected the request: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A client socket whose protocol phase is a type parameter; see the
/// module docs. Construct with [`LiveSock::bind`].
pub struct LiveSock<S> {
    sock: UdpSocket,
    wizard: SocketAddr,
    flow: RequestFlow<S>,
}

impl LiveSock<Registered> {
    /// Bind an ephemeral loopback port, registered toward `wizard`.
    pub fn bind(wizard: SocketAddr) -> io::Result<LiveSock<Registered>> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        let local = endpoint_of(sock.local_addr()?)
            .ok_or_else(|| io::Error::other("live client requires an IPv4 bind address"))?;
        Ok(LiveSock { sock, wizard, flow: RequestFlow::new().register(local) })
    }

    /// The bound local endpoint.
    pub fn local(&self) -> Endpoint {
        self.flow.local()
    }

    /// Encode and send the request once, entering the awaiting phase.
    pub fn request(self, req: UserRequest) -> io::Result<LiveSock<Requested>> {
        let flow = self.flow.request(req);
        self.sock.send_to(flow.wire(), self.wizard)?;
        Ok(LiveSock { sock: self.sock, wizard: self.wizard, flow })
    }
}

impl LiveSock<Requested> {
    /// The in-flight request's sequence tag.
    pub fn seq(&self) -> u32 {
        self.flow.seq()
    }

    /// Retransmit the identical request datagram (same sequence number).
    pub fn resend(&self) -> io::Result<()> {
        self.sock.send_to(self.flow.wire(), self.wizard)?;
        Ok(())
    }

    /// Wait for the wizard's reply, retransmitting on timeout — §3.6.2
    /// step 3. `retries` is the number of *re*transmissions after the
    /// initial send, so the loop runs `retries + 1` attempts. On failure
    /// the socket comes back in the awaiting phase so the caller can keep
    /// trying or give up.
    #[allow(clippy::result_large_err)] // the Err arm intentionally returns the socket itself
    pub fn await_reply(
        mut self,
        timeout: Duration,
        retries: u32,
    ) -> Result<LiveSock<Connected>, (LiveSock<Requested>, RequestError)> {
        let attempts = retries.saturating_add(1);
        if let Err(e) = self.sock.set_read_timeout(Some(timeout.max(Duration::from_millis(1)))) {
            return Err((self, RequestError::Io(e)));
        }
        let mut buf = [0u8; 4096];
        for attempt in 0..attempts {
            if attempt > 0 {
                if let Err(e) = self.resend() {
                    return Err((self, RequestError::Io(e)));
                }
            }
            // Drain datagrams until this attempt's timer runs out; stray
            // traffic (stale sequence numbers, undecodable noise) never
            // ends the wait early.
            loop {
                let n = match self.sock.recv_from(&mut buf) {
                    Ok((n, _)) => n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(e) => return Err((self, RequestError::Io(e))),
                };
                let Some(datagram) = buf.get(..n) else { continue };
                match self.flow.accept(datagram) {
                    Ok(flow) => {
                        return Ok(LiveSock { sock: self.sock, wizard: self.wizard, flow });
                    }
                    Err((flow, err)) => {
                        self.flow = flow;
                        match err {
                            // A definitive answer: retransmitting cannot
                            // improve it. Hand the verdict back.
                            FlowError::Empty | FlowError::Short { .. } => {
                                return Err((self, RequestError::Rejected(err)));
                            }
                            // Noise; keep listening within this attempt.
                            FlowError::Undecodable(_) | FlowError::SeqMismatch { .. } => {}
                        }
                    }
                }
            }
        }
        Err((self, RequestError::TimedOut { attempts }))
    }
}

impl LiveSock<Connected> {
    /// The selected service endpoints, best match first.
    pub fn servers(&self) -> &[Endpoint] {
        self.flow.servers()
    }

    /// The best-ranked server.
    pub fn primary(&self) -> Option<Endpoint> {
        self.flow.primary()
    }

    /// Full or short, as classified against the original request.
    pub fn status(&self) -> ReplyStatus {
        self.flow.status()
    }

    /// Surrender the socket for the raw reply.
    pub fn into_reply(self) -> WizardReply {
        self.flow.into_reply()
    }
}

/// Send one probe report to a live wizard over real UDP.
pub fn send_live_report(wizard: SocketAddr, report: &ServerStatusReport) -> io::Result<()> {
    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.send_to(report.encode_ascii().as_bytes(), wizard)?;
    Ok(())
}

/// One-shot convenience over [`LiveSock`]: request, await, return the
/// reply. An *empty* reply is returned as a reply (the CLI reports it to
/// the operator); timeouts and short-reply rejections become errors.
pub fn live_request(
    wizard: SocketAddr,
    req: &UserRequest,
    timeout: Duration,
    retries: u32,
) -> io::Result<WizardReply> {
    let seq = req.seq;
    let sock = LiveSock::bind(wizard)?.request(req.clone())?;
    match sock.await_reply(timeout, retries) {
        Ok(connected) => Ok(connected.into_reply()),
        Err((_, RequestError::Rejected(FlowError::Empty))) => {
            Ok(WizardReply { seq, servers: Vec::new() })
        }
        Err((_, RequestError::Io(e))) => Err(e),
        Err((_, RequestError::TimedOut { .. })) => {
            Err(io::Error::new(io::ErrorKind::TimedOut, "wizard did not reply"))
        }
        Err((_, e @ RequestError::Rejected(_))) => Err(io::Error::other(e.to_string())),
    }
}

/// Ask a running daemon for its current telemetry snapshot (the `SSQ1` /
/// `SSA1` exchange behind `smartsockd stats`). One datagram each way per
/// attempt; stray datagrams and replies to other queries are skipped by
/// the echoed `seq`.
pub fn query_stats(
    daemon: SocketAddr,
    seq: u32,
    timeout: Duration,
    retries: u32,
) -> io::Result<StatsReply> {
    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.set_read_timeout(Some(timeout))?;
    let wire = StatsRequest { seq }.encode();
    let mut buf = [0u8; 65536];
    for _ in 0..retries.max(1) {
        sock.send_to(&wire, daemon)?;
        loop {
            match sock.recv_from(&mut buf) {
                Ok((n, from)) => {
                    if from != daemon {
                        continue;
                    }
                    let Some(payload) = buf.get(..n) else { continue };
                    match StatsReply::decode(payload) {
                        Ok(reply) if reply.seq == seq => return Ok(reply),
                        // Someone else's reply, or damage: keep listening
                        // until this attempt's timeout.
                        Ok(_) | Err(_) => continue,
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e),
            }
        }
    }
    Err(io::Error::new(io::ErrorKind::TimedOut, "daemon did not answer the stats query"))
}

/// Open the data-plane TCP connection to a selected server. Exposed for
/// deployments where the service endpoints are real; the loopback test
/// rigs report protocol-level addresses that are not dialable.
pub fn connect_service(server: Endpoint, timeout: Duration) -> io::Result<std::net::TcpStream> {
    std::net::TcpStream::connect_timeout(&sockaddr_of(server), timeout)
}
