//! The live server probe: the §3.2.1 daemon over real sockets and (when
//! available) the real `/proc`.
//!
//! Sampling reads `loadavg`, `stat`, `meminfo`, and `net/dev` under a
//! configurable root with the same parsers the simulator's render/parse
//! pair exercises; modern kernels lack the 2.4 `disk_io:` line and use
//! the per-field `meminfo` format, both of which the parsers absorb.
//! Differentiation is `smartsock_probe::ReportEngine` — the identical
//! code path the simulated probe runs — so a given counter history
//! produces byte-for-byte the same report on either backend.
//!
//! The watch loop paces itself with `recv_timeout` on a stop channel
//! rather than sleeping: dropping (or signalling) the stop handle ends
//! the loop at the next tick boundary with no polling.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::Duration;

use smartsock_hostsim::procfs;
use smartsock_probe::{ProbeIdentity, ProcSample, ReportEngine};
use smartsock_sim::SimTime;

use crate::clock::Clock;

/// One sampling pass over the procfs files under `proc_root`, reading the
/// network counters for `iface`. Shared between [`LiveProbe`] and the
/// live wizard's heartbeat self-report, so both describe a host with the
/// exact same parsers.
pub fn sample_proc(proc_root: &Path, iface: &str) -> io::Result<ProcSample> {
    let read = |name: &str| std::fs::read_to_string(proc_root.join(name));
    let parse_err =
        |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("unparseable {what}"));
    let (load1, load5, load15) =
        procfs::parse_loadavg(&read("loadavg")?).ok_or_else(|| parse_err("loadavg"))?;
    let stat = read("stat")?;
    let jiffies = procfs::parse_stat_cpu(&stat).ok_or_else(|| parse_err("stat cpu line"))?;
    // 2.4 kernels expose cumulative disk counters in `stat`; modern
    // ones do not — report zero activity rather than failing.
    let disk = procfs::parse_stat_disk(&stat).unwrap_or_default();
    let mem = procfs::parse_meminfo(&read("meminfo")?).ok_or_else(|| parse_err("meminfo"))?;
    let net = procfs::parse_net_dev(&read("net/dev")?, iface)
        .ok_or_else(|| parse_err("net/dev iface line"))?;
    Ok(ProcSample { load1, load5, load15, jiffies, disk, mem, net })
}

/// A live probe daemon: samples, differentiates, reports over UDP.
pub struct LiveProbe {
    sock: UdpSocket,
    wizard: SocketAddr,
    id: ProbeIdentity,
    engine: ReportEngine,
    clock: Clock,
    proc_root: PathBuf,
}

impl LiveProbe {
    /// A probe reporting to `wizard` as `id`, sampling the real `/proc`.
    pub fn new(wizard: SocketAddr, id: ProbeIdentity, clock: Clock) -> io::Result<LiveProbe> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        Ok(LiveProbe {
            sock,
            wizard,
            id,
            engine: ReportEngine::new(),
            clock,
            proc_root: "/proc".into(),
        })
    }

    /// Sample under a different root (a fixture directory in tests, or a
    /// container's `/host/proc`).
    pub fn with_proc_root(mut self, root: impl Into<PathBuf>) -> LiveProbe {
        self.proc_root = root.into();
        self
    }

    /// One sampling pass over the procfs files.
    pub fn sample(&self) -> io::Result<ProcSample> {
        sample_proc(&self.proc_root, &self.id.iface)
    }

    /// Sample, differentiate, encode, send. Returns the report size in
    /// bytes (the §3.2.1 contract keeps it under 200).
    pub fn report_once(&mut self) -> io::Result<usize> {
        let sample = self.sample()?;
        let now = SimTime(self.clock.now_ns());
        let report = self.engine.report(now, &self.id, &sample);
        let line = report.encode_ascii();
        self.sock.send_to(line.as_bytes(), self.wizard)?;
        Ok(line.len())
    }

    /// Report every `interval` until `count` reports have gone out or the
    /// stop channel fires (a message *or* a dropped sender both stop the
    /// loop). Returns the number of reports sent.
    pub fn watch(
        &mut self,
        interval: Duration,
        count: u64,
        stop: &Receiver<()>,
    ) -> io::Result<u64> {
        let mut sent = 0;
        while sent < count {
            self.report_once()?;
            sent += 1;
            if sent < count {
                match stop.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => {}
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        Ok(sent)
    }
}
