//! # smartsock-live
//!
//! The real-socket backend of the smartsock control plane: one protocol
//! stack, two engines.
//!
//! Everything protocol-shaped — wire formats, the monitor+wizard demux
//! and matching core, probe counter differentiation, the client state
//! machine — lives in backend-agnostic crates (`smartsock-proto`,
//! `smartsock-wizard::engine`, `smartsock-probe::engine`) behind the
//! [`Transport`](smartsock_proto::Transport) seam. The simulator drives
//! those engines from a virtual-time scheduler; this crate drives the
//! *same* engines from OS threads over real UDP on localhost:
//!
//! * [`LiveWizard`] — the combined monitor+wizard daemon thread
//!   (§4.3's co-hosted deployment), ingesting §3.2.1 ASCII reports and
//!   answering user requests on one socket, with the same telemetry
//!   names the simulated daemons emit;
//! * [`LiveProbe`] — the server probe, sampling a real `/proc` (or a
//!   fixture root) through the same parsers and differentiation engine;
//! * [`LiveSock`] — the §3.6.2 client, typestate-shaped so protocol
//!   misuse is a compile error on this backend exactly as in the sim;
//! * [`FaultShim`] — a deterministic datagram-loss relay, the live twin
//!   of `smartsock-faults`' loss injection, for retry testing;
//! * [`Clock`] — wall or manual time, so time-dependent scenarios run
//!   under test control.
//!
//! The interop conformance suite (`tests/interop.rs` at the workspace
//! root) holds the two backends to byte-identical frames and identical
//! protocol-visible outcomes.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod client;
pub mod clock;
pub mod probe;
pub mod shim;
pub mod transport;
pub mod wizard;

pub use client::{
    connect_service, live_request, query_stats, send_live_report, LiveSock, RequestError,
};
pub use clock::{Clock, ManualHandle};
pub use probe::{sample_proc, LiveProbe};
pub use shim::{FaultShim, ShimPolicy};
pub use transport::{endpoint_of, sockaddr_of, UdpTransport};
pub use wizard::{LiveWizard, WizardStats};
