//! Integration tests for the real-socket backend: daemon lifecycle,
//! typestate client round-trips, procfs-backed probing, deterministic
//! datagram loss, and manual-clock staleness — all over real UDP on
//! 127.0.0.1.

use std::sync::mpsc;
use std::time::Duration;

use smartsock_live::{
    live_request, query_stats, send_live_report, Clock, FaultShim, LiveProbe, LiveSock, LiveWizard,
    RequestError, ShimPolicy,
};
use smartsock_probe::ProbeIdentity;
use smartsock_proto::{Ip, ReplyStatus, RequestOption, ServerStatusReport, UserRequest};
use smartsock_wizard::SelectPolicy;

fn report(name: &str, last_octet: u8, cpu_idle: f64) -> ServerStatusReport {
    let mut r = ServerStatusReport::empty(name, Ip::new(192, 168, 9, last_octet));
    r.cpu_idle = cpu_idle;
    r.mem_free = 200 << 20;
    r.mem_total = 256 << 20;
    r
}

fn req(seq: u32, server_num: u16, detail: &str) -> UserRequest {
    UserRequest { seq, server_num, option: RequestOption::DEFAULT, detail: detail.to_owned() }
}

/// Poll until the wizard has ingested `n` reports (ingestion is
/// asynchronous to the sender's return).
fn wait_for_reports(wiz: &LiveWizard, n: u64) {
    for _ in 0..400 {
        if wiz.reports_ingested() >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("wizard never ingested {n} reports (got {})", wiz.reports_ingested());
}

#[test]
fn typestate_client_roundtrip_selects_qualified_servers() {
    let wiz = LiveWizard::spawn().unwrap();
    send_live_report(wiz.addr(), &report("idle1", 1, 0.97)).unwrap();
    send_live_report(wiz.addr(), &report("busy", 2, 0.10)).unwrap();
    send_live_report(wiz.addr(), &report("idle2", 3, 0.95)).unwrap();
    wait_for_reports(&wiz, 3);
    assert_eq!(wiz.live_servers(), 3);

    let sock = LiveSock::bind(wiz.addr()).unwrap();
    let waiting = sock.request(req(0xabcd, 5, "host_cpu_free > 0.9\n")).unwrap();
    let connected = match waiting.await_reply(Duration::from_millis(500), 3) {
        Ok(c) => c,
        Err((_, e)) => panic!("request failed: {e}"),
    };
    assert_eq!(connected.servers().len(), 2);
    assert!(connected.primary().is_some());
    assert_eq!(connected.status(), ReplyStatus::Short { requested: 5, returned: 2 });
    let reply = connected.into_reply();
    assert_eq!(reply.seq, 0xabcd);

    let stats = wiz.shutdown().unwrap();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.reports, 3);
}

#[test]
fn shutdown_is_prompt_without_traffic() {
    // The daemon blocks in recv_from with no read timeout; shutdown must
    // still return promptly (the wakeup datagram) — a hang here is the
    // test's own timeout.
    let wiz = LiveWizard::spawn().unwrap();
    let stats = wiz.shutdown().unwrap();
    assert_eq!(stats.served, 0);
    assert_eq!(stats.reports, 0);
}

#[test]
fn live_trace_carries_simulator_telemetry_names() {
    let wiz = LiveWizard::spawn().unwrap();
    send_live_report(wiz.addr(), &report("idle1", 1, 0.97)).unwrap();
    wait_for_reports(&wiz, 1);
    let _ = live_request(wiz.addr(), &req(7, 1, ""), Duration::from_millis(500), 3).unwrap();
    let trace = wiz.shutdown().unwrap().trace_jsonl;
    for needle in
        ["sysmon-reports", "sysmon-bytes", "wizard-match", "wizard-replies", "wizard-reply-servers"]
    {
        assert!(trace.contains(needle), "trace missing {needle}:\n{trace}");
    }
}

#[test]
fn stats_query_snapshots_a_running_daemon() {
    let wiz = LiveWizard::spawn().unwrap();
    send_live_report(wiz.addr(), &report("idle1", 1, 0.97)).unwrap();
    wait_for_reports(&wiz, 1);
    let _ = live_request(wiz.addr(), &req(9, 1, ""), Duration::from_millis(500), 3).unwrap();

    let snap = query_stats(wiz.addr(), 0x51a7, Duration::from_millis(500), 3).unwrap();
    assert_eq!(snap.dropped, 0);
    let count = |scope: &str, name: &str| {
        snap.counts
            .iter()
            .find(|c| c.scope == scope && c.name == name)
            .map(|c| c.value)
            .unwrap_or_else(|| panic!("snapshot missing {scope}/{name}: {:?}", snap.counts))
    };
    assert_eq!(count("daemon", "sysmon-reports"), 1);
    assert_eq!(count("daemon", "wizard-replies"), 1);
    // The daemon's rollup scopes its own spans by its bind host.
    assert_eq!(count("host/127.0.0.1", "wizard-match"), 1);
    assert!(
        snap.hists.iter().any(|h| h.name == "wizard-match" && h.count >= 1),
        "rollup histogram rows missing: {:?}",
        snap.hists
    );
    // The query itself is counted — visible in the *next* snapshot.
    let again = query_stats(wiz.addr(), 0x51a8, Duration::from_millis(500), 3).unwrap();
    assert!(
        again.counts.iter().any(|c| c.name == "wizard-stats-requests" && c.value >= 1),
        "stats requests not counted: {:?}",
        again.counts
    );

    // Heartbeat: the first inbound datagram carries the daemon's first
    // self-report, so the shutdown trace records it.
    let trace = wiz.shutdown().unwrap().trace_jsonl;
    assert!(trace.contains("daemon-heartbeat"), "no heartbeat in trace:\n{trace}");
}

#[test]
fn streaming_wizard_writes_the_trace_incrementally() {
    let dir = std::env::temp_dir().join(format!("smartsock-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.jsonl");
    let wiz =
        LiveWizard::spawn_streaming("127.0.0.1:0", SelectPolicy::default(), Clock::wall(), &path)
            .unwrap();
    send_live_report(wiz.addr(), &report("idle1", 1, 0.97)).unwrap();
    wait_for_reports(&wiz, 1);
    // Live stats still work in stream mode (the rollup side of the tee).
    let snap = query_stats(wiz.addr(), 0x51a9, Duration::from_millis(500), 3).unwrap();
    assert!(snap.counts.iter().any(|c| c.name == "sysmon-reports"));
    let stats = wiz.shutdown().unwrap();
    assert_eq!(stats.dropped, 0);
    let streamed = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(streamed.contains("daemon-heartbeat"), "streamed trace missing records:\n{streamed}");
    assert!(streamed.contains("\"t\":\"counter\""), "summary tail not flushed:\n{streamed}");
    // The in-memory copy holds only the summary (records went to the file).
    assert!(stats.trace_jsonl.contains("sysmon-reports"));
}

#[test]
fn procfs_probe_watch_reports_the_requested_count() {
    let wiz = LiveWizard::spawn().unwrap();
    let id = ProbeIdentity {
        host: "fixture".into(),
        ip: Ip::new(192, 168, 9, 40),
        bogomips: 3394.76,
        iface: "eth0".to_owned(),
        services: Default::default(),
    };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/proc");
    let mut probe = LiveProbe::new(wiz.addr(), id, Clock::wall()).unwrap().with_proc_root(root);
    let (_keepalive, stop) = mpsc::channel::<()>();
    let sent = probe.watch(Duration::from_millis(10), 3, &stop).unwrap();
    assert_eq!(sent, 3);
    wait_for_reports(&wiz, 3);
    assert_eq!(wiz.live_servers(), 1, "same host upserts in place");
    let stats = wiz.shutdown().unwrap();
    assert_eq!(stats.reports, 3);
}

#[test]
fn procfs_probe_first_report_reflects_modern_proc_fixture() {
    // The fixture uses the modern kernel formats: per-field meminfo, no
    // disk_io line — the probe must absorb both.
    let wiz = LiveWizard::spawn().unwrap();
    let id = ProbeIdentity {
        host: "fixture".into(),
        ip: Ip::new(192, 168, 9, 41),
        bogomips: 1000.0,
        iface: "eth0".to_owned(),
        services: Default::default(),
    };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/proc");
    let mut probe = LiveProbe::new(wiz.addr(), id, Clock::wall()).unwrap().with_proc_root(root);
    let bytes = probe.report_once().unwrap();
    assert!(bytes < 200, "report must stay under 200 bytes, got {bytes}");
    wait_for_reports(&wiz, 1);
    // First scan differentiates against boot: 1500 idle of 2000 jiffies.
    let reply = live_request(
        wiz.addr(),
        &req(11, 1, "host_cpu_free > 0.7\nhost_memory_free > 100000000\n"),
        Duration::from_millis(500),
        3,
    )
    .unwrap();
    assert_eq!(reply.servers.len(), 1, "fixture host qualifies on cpu and memory");
}

#[test]
fn client_retries_through_dropped_datagrams() {
    let wiz = LiveWizard::spawn().unwrap();
    send_live_report(wiz.addr(), &report("idle1", 1, 0.97)).unwrap();
    wait_for_reports(&wiz, 1);

    let shim =
        FaultShim::spawn(wiz.addr(), ShimPolicy { drop_requests: 1, drop_replies: 0 }).unwrap();
    // First request is eaten; the retransmit (same sequence number) lands.
    let reply = live_request(shim.addr(), &req(42, 1, ""), Duration::from_millis(100), 3).unwrap();
    assert_eq!(reply.seq, 42);
    assert_eq!(reply.servers.len(), 1);
    assert_eq!(shim.dropped(), 1);
    assert!(shim.forwarded() >= 2, "request + reply forwarded, got {}", shim.forwarded());
    shim.shutdown().unwrap();
    assert_eq!(wiz.shutdown().unwrap().served, 1);
}

#[test]
fn manual_clock_expires_stale_reports() {
    let (clock, hand) = Clock::manual();
    let wiz = LiveWizard::spawn_with("127.0.0.1:0", SelectPolicy::default(), clock).unwrap();
    send_live_report(wiz.addr(), &report("ephemeral", 9, 0.99)).unwrap();
    wait_for_reports(&wiz, 1);

    let fresh = live_request(wiz.addr(), &req(1, 1, ""), Duration::from_millis(500), 3).unwrap();
    assert_eq!(fresh.servers.len(), 1, "fresh record is offered");

    // Default staleness window is 3 probe intervals (6 s); jump past it.
    hand.advance_secs(60);
    let stale = live_request(wiz.addr(), &req(2, 1, ""), Duration::from_millis(500), 3).unwrap();
    assert!(stale.servers.is_empty(), "stale record must not be offered");
    let trace = wiz.shutdown().unwrap().trace_jsonl;
    assert!(trace.contains("status-db-expired"), "expiry must be traced:\n{trace}");
}

#[test]
fn timeout_hands_the_socket_back_in_the_requested_phase() {
    // A dead address: bind then drop to find an unused port.
    let dead = {
        let s = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        s.local_addr().unwrap()
    };
    let sock = LiveSock::bind(dead).unwrap();
    let waiting = sock.request(req(5, 1, "")).unwrap();
    match waiting.await_reply(Duration::from_millis(20), 1) {
        Ok(_) => panic!("no wizard is listening; the request cannot connect"),
        Err((sock, RequestError::TimedOut { attempts })) => {
            assert_eq!(attempts, 2);
            assert_eq!(sock.seq(), 5, "socket comes back still awaiting the same request");
        }
        Err((_, e)) => panic!("expected a timeout, got {e}"),
    }
}
