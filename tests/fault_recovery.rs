//! End-to-end failover recovery under deterministic fault injection: the
//! scripted scenarios the `smartsock-faults` crate exists for. Every
//! scenario ends with the client holding connections to live,
//! requirement-satisfying servers, and every run is reproducible from its
//! seed.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use smartsock::client::RequestSpec;
use smartsock::{ReliableServer, ReliableSock, SockGroup, Testbed};
use smartsock_faults::{ChaosConfig, Daemon, FaultInjector, FaultKind, FaultPlan};
use smartsock_net::{HostParams, LinkParams, NetworkBuilder, Payload};
use smartsock_proto::consts::ports;
use smartsock_proto::{Endpoint, Ip};
use smartsock_sim::{Scheduler, SimDuration, SimTime};

fn with_services(seed: u64) -> (Scheduler, Testbed) {
    let (mut s, tb) = Testbed::paper(seed);
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    s.run_until(SimTime::from_secs(10));
    (s, tb)
}

fn form_group(s: &mut Scheduler, tb: &Testbed, requirement: &str, n: u16) -> SockGroup {
    let client = tb.client("sagit");
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    SockGroup::request(&client, s, RequestSpec::new(requirement, n), move |_s, r| {
        *g.borrow_mut() = Some(r.expect("group forms"));
    });
    s.run_until(s.now() + SimDuration::from_secs(5));
    let group = got.borrow_mut().take().expect("request completed");
    group
}

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn member_names(tb: &Testbed, group: &SockGroup) -> Vec<String> {
    let mut names: Vec<String> = group
        .sockets()
        .iter()
        .map(|k| {
            let node = tb.net.node_by_ip(k.remote.ip).expect("member resolves");
            tb.net.name_of(node).as_str().to_owned()
        })
        .collect();
    names.sort();
    names
}

/// The far end of `host`'s uplink (its access switch or gateway).
fn access_switch(tb: &Testbed, host: &str) -> String {
    let node = tb.node(host);
    let other = if host.eq_ignore_ascii_case("sagit") { "dalmatian" } else { "sagit" };
    let links = tb.net.path_links(node, tb.node(other)).expect("host is attached");
    let peer = tb.net.link_endpoints(links[0]).1;
    tb.net.name_of(peer).as_str().to_owned()
}

const SPREAD: &str = "host_cpu_free > 0.9\nuser_denied_host1 = sagit\n";

/// A group member that is safe to kill without also taking down the
/// monitor/wizard machine (dalmatian hosts both — crashing it is its own
/// scenario below).
fn expendable_member(tb: &Testbed, group: &SockGroup) -> String {
    member_names(tb, group)
        .into_iter()
        .find(|n| n != "dalmatian")
        .expect("group has a non-monitor member")
}

/// Scenario 1: a group member's access link flaps. While the link is down
/// the member is unreachable; the auto-repair loop swaps in a live
/// replacement, and after the heal the group is still fully healthy.
#[test]
fn link_flap_is_survived_by_auto_repair() {
    let (mut s, tb) = with_services(211);
    let group = form_group(&mut s, &tb, SPREAD, 3);
    assert_eq!(group.len(), 3);
    let victim = expendable_member(&tb, &group);
    let switch = access_switch(&tb, &victim);

    let _guard = group.auto_repair(&mut s, SimDuration::from_secs(2));
    let inj = tb.fault_injector();
    let t0 = s.now();
    let plan = FaultPlan::new()
        .at(
            t0 + SimDuration::from_secs(2),
            FaultKind::LinkDown { a: victim.clone(), b: switch.clone() },
        )
        .at(t0 + SimDuration::from_secs(40), FaultKind::LinkUp { a: victim, b: switch });
    inj.schedule(&mut s, &plan);

    s.run_until(t0 + SimDuration::from_secs(60));
    assert_eq!(group.len(), 3, "group back to full strength: {:?}", member_names(&tb, &group));
    assert!(group.all_healthy(), "all members reachable after the heal");
    assert_eq!(s.telemetry.event_count_where("fault-injected", "kind", "link-down"), 1);
    assert_eq!(s.telemetry.event_count_where("fault-recovered", "kind", "link-up"), 1);
    assert!(s.telemetry.counter("net-link-down-drops") > 0, "down link dropped traffic");
    assert!(s.telemetry.event_count("group-repaired") >= 1, "repair replaced the dead member");
}

/// Scenario 2: a group member's machine crashes outright (sockets wiped,
/// procfs counters reset) and later reboots. The group repairs onto a
/// survivor; after the reboot the probe re-registers with the monitor and
/// the machine serves again.
#[test]
fn host_crash_and_reboot_recover_end_to_end() {
    let (mut s, tb) = with_services(223);
    let group = form_group(&mut s, &tb, SPREAD, 3);
    let victim = expendable_member(&tb, &group);

    let _guard = group.auto_repair(&mut s, SimDuration::from_secs(2));
    let inj = tb.fault_injector();
    // A rebooted machine restarts its service daemon too.
    let net = tb.net.clone();
    let service = tb.service_endpoint(&victim);
    inj.on_reboot(&victim, move |_s| {
        net.bind_stream(service, |_s, _m| {});
    });
    let t0 = s.now();
    let plan = FaultPlan::new()
        .at(t0 + SimDuration::from_secs(2), FaultKind::HostCrash { host: victim.clone() })
        .at(t0 + SimDuration::from_secs(30), FaultKind::HostReboot { host: victim.clone() });
    inj.schedule(&mut s, &plan);

    s.run_until(t0 + SimDuration::from_secs(25));
    assert!(group.all_healthy(), "repaired before the reboot");
    assert!(
        !member_names(&tb, &group).contains(&victim),
        "crashed {victim} was replaced: {:?}",
        member_names(&tb, &group)
    );

    s.run_until(t0 + SimDuration::from_secs(60));
    assert_eq!(group.len(), 3);
    assert!(group.all_healthy());
    assert_eq!(tb.sysmon.live_servers(), 11, "rebooted {victim} reports again");
    assert_eq!(s.telemetry.event_count_where("fault-injected", "kind", "host-crash"), 1);
    assert_eq!(s.telemetry.event_count_where("fault-recovered", "kind", "host-reboot"), 1);
    assert_eq!(s.telemetry.counter("net-node-crashes"), 1);
    assert_eq!(s.telemetry.counter("net-node-revivals"), 1);
    assert!(s.telemetry.event_count("group-repaired") >= 1, "repair replaced the crashed member");
    assert!(s.telemetry.counter("probe-restarts") >= 1, "probe came back after reboot");
}

/// Scenario 3: a partition isolates segment 2 (telesto, lhost) from the
/// monitor/client side. Both members go unreachable, their reports expire,
/// the group repairs onto the majority side; the heal reconnects the
/// segment and its probes resume reporting.
#[test]
fn partition_isolating_a_server_group_heals_cleanly() {
    let (mut s, tb) = with_services(227);
    let group = form_group(
        &mut s,
        &tb,
        "host_cpu_free > 0.9\nuser_preferred_host1 = telesto\nuser_preferred_host2 = lhost\nuser_denied_host1 = sagit\n",
        3,
    );
    let before = member_names(&tb, &group);
    assert!(before.contains(&"telesto".to_owned()), "preferred member present: {before:?}");
    assert!(before.contains(&"lhost".to_owned()), "preferred member present: {before:?}");

    let _guard = group.auto_repair(&mut s, SimDuration::from_secs(2));
    let inj = tb.fault_injector();
    let t0 = s.now();
    let plan = FaultPlan::new()
        .at(
            t0 + SimDuration::from_secs(2),
            FaultKind::Partition {
                name: "seg2".to_owned(),
                side_a: vec!["telesto".to_owned(), "lhost".to_owned()],
                side_b: vec!["sagit".to_owned(), "dalmatian".to_owned()],
            },
        )
        .at(t0 + SimDuration::from_secs(30), FaultKind::Heal { name: "seg2".to_owned() });
    inj.schedule(&mut s, &plan);

    s.run_until(t0 + SimDuration::from_secs(25));
    let during = member_names(&tb, &group);
    assert!(group.all_healthy(), "repaired onto the majority side: {during:?}");
    assert!(!during.contains(&"telesto".to_owned()), "isolated member replaced: {during:?}");
    assert!(!during.contains(&"lhost".to_owned()), "isolated member replaced: {during:?}");
    assert_eq!(tb.sysmon.live_servers(), 9, "isolated segment expired from the monitor");

    s.run_until(t0 + SimDuration::from_secs(50));
    assert!(group.all_healthy());
    assert_eq!(group.len(), 3);
    assert_eq!(tb.sysmon.live_servers(), 11, "healed segment reports again");
    assert_eq!(s.telemetry.event_count_where("fault-injected", "kind", "partition"), 1);
    assert_eq!(s.telemetry.event_count_where("fault-recovered", "kind", "heal"), 1);
    assert!(
        s.telemetry.event_count_where("status-db-expired", "db", "sysdb") >= 2,
        "both isolated servers expired from the status database"
    );
}

/// Scenario 4: the wizard daemon dies just before a request. The client's
/// exponential backoff rides out the outage; once the wizard restarts, the
/// retry succeeds and the client holds live connections.
#[test]
fn wizard_daemon_restart_is_ridden_out_by_client_backoff() {
    let (mut s, tb) = with_services(229);
    let inj = tb.fault_injector();
    inj.apply(&mut s, &FaultKind::DaemonKill { daemon: Daemon::Wizard });

    let t0 = s.now();
    let plan = FaultPlan::new()
        .at(t0 + SimDuration::from_secs(3), FaultKind::DaemonRestart { daemon: Daemon::Wizard });
    inj.schedule(&mut s, &plan);

    let client = tb.client("sagit");
    let mut spec = RequestSpec::new(SPREAD, 3);
    spec.retries = 3;
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    client.request(&mut s, spec, move |_s, r| *g.borrow_mut() = Some(r));
    s.run_until(t0 + SimDuration::from_secs(30));

    let socks = got.borrow_mut().take().expect("callback fired").expect("request succeeded");
    assert_eq!(socks.len(), 3);
    assert!(socks.iter().all(|k| k.is_connected()), "all connections live");
    assert!(s.telemetry.event_count("client-retry") >= 1, "first attempt hit the dead wizard");
    assert!(s.telemetry.event_count("client-backoff") >= 1, "backoff applied");
    assert_eq!(s.telemetry.event_count_where("fault-injected", "kind", "daemon-kill"), 1);
    assert_eq!(s.telemetry.event_count_where("fault-recovered", "kind", "daemon-restart"), 1);
    assert_eq!(s.telemetry.counter("wizard-restarts"), 1);
    for k in socks {
        k.close();
    }
}

/// Scenario 5: the monitor/wizard machine itself crashes mid-experiment.
/// Established connections keep working through the outage (the data path
/// does not involve the monitor), and after the reboot the full stack —
/// probe, system monitor, wizard — comes back and serves fresh requests.
#[test]
fn monitor_machine_crash_mid_experiment_recovers_the_stack() {
    let (mut s, tb) = with_services(233);
    let group = form_group(
        &mut s,
        &tb,
        "host_cpu_free > 0.9\nuser_denied_host1 = sagit\nuser_denied_host2 = dalmatian\n",
        3,
    );
    assert!(!member_names(&tb, &group).contains(&"dalmatian".to_owned()));

    let inj = tb.fault_injector();
    let net = tb.net.clone();
    let service = tb.service_endpoint("dalmatian");
    inj.on_reboot("dalmatian", move |_s| {
        net.bind_stream(service, |_s, _m| {});
    });
    let t0 = s.now();
    let plan = FaultPlan::new()
        .at(t0 + SimDuration::from_secs(2), FaultKind::HostCrash { host: "dalmatian".to_owned() })
        .at(
            t0 + SimDuration::from_secs(20),
            FaultKind::HostReboot { host: "dalmatian".to_owned() },
        );
    inj.schedule(&mut s, &plan);

    // Mid-outage: the group's data path is monitor-free and stays healthy.
    s.run_until(t0 + SimDuration::from_secs(15));
    assert!(group.all_healthy(), "existing connections survive the monitor outage");

    // Post-reboot: probes repopulate the restarted monitor, the restarted
    // wizard answers a brand-new request.
    s.run_until(t0 + SimDuration::from_secs(45));
    assert!(tb.sysmon.live_servers() >= 10, "monitor repopulated after restart");
    let fresh = form_group(&mut s, &tb, SPREAD, 3);
    assert_eq!(fresh.len(), 3);
    assert!(fresh.all_healthy());
    assert_eq!(s.telemetry.event_count_where("fault-injected", "kind", "host-crash"), 1);
    assert_eq!(s.telemetry.event_count_where("fault-recovered", "kind", "host-reboot"), 1);
    assert_eq!(s.telemetry.counter("sysmon-restarts"), 1);
    assert_eq!(s.telemetry.counter("wizard-restarts"), 1);
    assert!(s.telemetry.counter("net-host-down-drops") > 0, "reports dropped during the crash");
}

/// One full chaos run: random faults sampled from the seed for 40 sim
/// seconds while a reliable conversation runs across the testbed. Returns
/// the delivered bytes, the exported telemetry trace and the event count.
fn chaos_run(seed: u64) -> (Vec<u8>, String, u64) {
    let (mut s, tb) = with_services(seed);
    let inj = tb.fault_injector();

    let client_ep = Endpoint::new(tb.ip("sagit"), 48000);
    let server_ep = Endpoint::new(tb.ip("helene"), 48100);
    let delivered: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&delivered);
    let handle = ReliableServer::install(&tb.net, server_ep, move |_s, _from, payload| {
        sink.borrow_mut().push(payload.data[0]);
    });
    let h2 = handle.clone();
    inj.on_reboot("helene", move |_s| h2.rebind());
    let sock = ReliableSock::connect(&tb.net, client_ep, server_ep);
    let sock2 = sock.clone();
    inj.on_reboot("sagit", move |s| sock2.resume(s, None));

    for i in 0..30u8 {
        let sock2 = sock.clone();
        s.schedule_at(
            SimTime::from_secs(10) + SimDuration::from_millis(500 * u64::from(i)),
            move |s| sock2.send(s, Payload::data(vec![i])),
        );
    }
    inj.chaos(&mut s, ChaosConfig::gentle(SimTime::from_secs(40)));
    s.run_until(SimTime::from_secs(80));

    let trace = s.telemetry.export_jsonl();
    let bytes = delivered.borrow().clone();
    (bytes, trace, s.events_processed())
}

/// ChaosRng mode: the same seed reproduces the run byte-for-byte; a
/// different seed produces different fault timings; and in both cases the
/// reliable socket delivers every message exactly once, in order, with no
/// panics and no event-cap blowup.
#[test]
fn chaos_runs_are_seed_deterministic_and_never_duplicate_delivery() {
    let expected: Vec<u8> = (0..30u8).collect();

    let (bytes_a, trace_a, events_a) = chaos_run(777);
    let (bytes_b, trace_b, events_b) = chaos_run(777);
    assert_eq!(trace_a, trace_b, "same seed, byte-identical telemetry trace");
    assert_eq!(events_a, events_b, "same seed, same event count");
    assert_eq!(bytes_a, expected, "exactly-once, in-order through the chaos");
    assert_eq!(bytes_b, expected);
    assert!(
        trace_a.lines().any(|l| l.contains("\"fault-injected\"")),
        "chaos actually injected faults"
    );

    let (bytes_c, trace_c, _events_c) = chaos_run(778);
    assert_eq!(bytes_c, expected, "different seed still delivers exactly once");
    assert_ne!(trace_a, trace_c, "different seed, different fault timings");
}

/// Like [`chaos_run`] but the wizard's template registry is first flooded
/// with 64 extra templates (inserted in deliberately scrambled order) and
/// the client forms its group through a templated request. This is the
/// map-heavy path that regressed determinism when the registry hashed its
/// keys: iteration order — and hence reply order and every downstream
/// event — varied between identically-seeded runs.
fn chaos_run_templated(seed: u64) -> (Vec<String>, String, u64) {
    let (mut s, tb) = with_services(seed);
    // 37 is odd, so i*37 mod 64 walks all 64 residues: worst-case insertion
    // order for a hashed map, a no-op for the ordered registry.
    for i in 0..64u8 {
        let id = 100 + i.wrapping_mul(37) % 64;
        tb.wizard.add_template(id, format!("host_system_load1 < {}\n", 50 + u32::from(id)));
    }

    let client = tb.client("sagit");
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    let spec = RequestSpec::new(SPREAD, 3).with_template(100);
    SockGroup::request(&client, &mut s, spec, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("templated group forms"));
    });
    s.run_until(s.now() + SimDuration::from_secs(5));
    let group = got.borrow_mut().take().expect("request completed");

    let inj = tb.fault_injector();
    inj.chaos(&mut s, ChaosConfig::gentle(SimTime::from_secs(40)));
    s.run_until(SimTime::from_secs(60));

    (member_names(&tb, &group), s.telemetry.export_jsonl(), s.events_processed())
}

/// Regression: template-registry pressure must not break seed determinism.
#[test]
fn template_heavy_wizard_stays_seed_deterministic_under_chaos() {
    let (members_a, trace_a, events_a) = chaos_run_templated(881);
    let (members_b, trace_b, events_b) = chaos_run_templated(881);
    assert_eq!(members_a, members_b, "same seed, same group membership");
    assert_eq!(trace_a, trace_b, "same seed, byte-identical telemetry trace");
    assert_eq!(events_a, events_b, "same seed, same event count");
    assert_eq!(members_a.len(), 3, "templated request filled the group: {members_a:?}");
    assert!(
        trace_a.lines().any(|l| l.contains("\"fault-injected\"")),
        "chaos actually injected faults"
    );
}

proptest! {
    /// Satellite property: a reliable socket whose only path flaps up and
    /// down at arbitrary times — optionally suspending and resuming
    /// mid-stream — still delivers every message exactly once, in order.
    #[test]
    fn rsock_suspend_resume_under_injected_loss_delivers_exactly_once(
        seed in 0u64..1_000,
        flaps in proptest::collection::vec((0u64..8_000, 200u64..2_500), 1..4),
        n_msgs in 5usize..20,
        suspend_at in proptest::option::of(0u64..8_000),
    ) {
        let mut b = NetworkBuilder::new(seed);
        let a = b.host("client", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let r = b.router("sw", Ip::new(10, 0, 0, 254));
        let c = b.host("server", Ip::new(10, 0, 1, 1), HostParams::testbed());
        b.duplex(a, r, LinkParams::lan_100mbps());
        b.duplex(r, c, LinkParams::lan_100mbps());
        let net = b.build();
        let mut s = Scheduler::new();

        let client_ep = Endpoint::new(Ip::new(10, 0, 0, 1), 46000);
        let server_ep = Endpoint::new(Ip::new(10, 0, 1, 1), 1200);
        let delivered: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&delivered);
        ReliableServer::install(&net, server_ep, move |_s, _from, payload| {
            sink.borrow_mut().push(payload.data[0]);
        });
        let sock = ReliableSock::connect(&net, client_ep, server_ep);

        // The injected loss: the client's access link cuts and restores at
        // arbitrary offsets (stream frames sent into a down link vanish).
        let inj = FaultInjector::new(net.clone(), seed);
        let mut plan = FaultPlan::new();
        for &(off, dur) in &flaps {
            plan = plan
                .at(at_ms(off), FaultKind::LinkDown {
                    a: "client".to_owned(),
                    b: "sw".to_owned(),
                })
                .at(at_ms(off + dur), FaultKind::LinkUp {
                    a: "client".to_owned(),
                    b: "sw".to_owned(),
                });
        }
        inj.schedule(&mut s, &plan);

        if let Some(t) = suspend_at {
            let sock2 = sock.clone();
            s.schedule_at(at_ms(t), move |_s| sock2.suspend());
            let sock2 = sock.clone();
            s.schedule_at(at_ms(t + 777), move |s| sock2.resume(s, None));
        }

        for i in 0..n_msgs {
            let sock2 = sock.clone();
            s.schedule_at(at_ms(500 + 300 * i as u64), move |s| {
                sock2.send(s, Payload::data(vec![i as u8]));
            });
        }

        s.run_until(SimTime::from_secs(30));
        let expected: Vec<u8> = (0..n_msgs as u8).collect();
        prop_assert_eq!(
            delivered.borrow().clone(),
            expected,
            "exactly-once in-order despite {} flaps (unacked={})",
            flaps.len(),
            sock.unacked()
        );
        prop_assert_eq!(sock.unacked(), 0);
        let _ = a;
        let _ = c;
        let _ = r;
    }
}
