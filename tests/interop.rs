//! Interop conformance suite: one protocol stack, two engines.
//!
//! Every scenario feeds the *same* encoded wire bytes — ASCII
//! `ServerStatusReport` lines and binary `UserRequest` frames — to both
//! backends:
//!
//! * **sim**: a `SystemMonitor` + `Wizard` pair on a simulated LAN,
//!   datagrams travelling through the deterministic network model;
//! * **live**: a `LiveWizard` daemon thread over real UDP on 127.0.0.1,
//!   driven by a manual clock so staleness is as controllable as virtual
//!   time.
//!
//! Each scenario then asserts the reply frames are **byte-identical** and
//! that the decoded, protocol-visible outcome (sequence echo, server set,
//! ordering) matches. Reports claim their own IP inside the payload, so a
//! loopback datagram can carry the exact bytes a simulated 10.0.9.x server
//! would send — both sysdbs end up keyed identically.

use std::cell::RefCell;
use std::io;
use std::net::UdpSocket;
use std::rc::Rc;
use std::time::Duration;

use smartsock_live::{Clock, FaultShim, LiveWizard, ShimPolicy};
use smartsock_monitor::db::shared_dbs;
use smartsock_monitor::{SysMonConfig, SystemMonitor};
use smartsock_net::{HostParams, LinkParams, NetworkBuilder, Payload};
use smartsock_proto::{Endpoint, Ip, RequestOption, ServerStatusReport, UserRequest, WizardReply};
use smartsock_sim::{Scheduler, SimDuration, SimTime};
use smartsock_wizard::{SelectPolicy, Wizard, WizardConfig};

const WIZ_IP: Ip = Ip::new(10, 0, 0, 1);
const CLIENT_IP: Ip = Ip::new(10, 0, 0, 2);

/// The exact report bytes both backends ingest. The claimed IP lives in
/// the payload, so the same bytes mean the same server to either sysdb.
fn report_bytes(name: &str, last_octet: u8, cpu_idle: f64) -> Vec<u8> {
    let mut r = ServerStatusReport::empty(name, Ip::new(10, 0, 9, last_octet));
    r.cpu_idle = cpu_idle;
    r.load1 = 1.0 - cpu_idle;
    r.bogomips = 3394.76;
    r.mem_free = 200 << 20;
    r.mem_total = 256 << 20;
    r.encode_ascii().into_bytes()
}

/// The exact request frame both backends receive.
fn request_bytes(seq: u32, server_num: u16, detail: &str) -> Vec<u8> {
    let req =
        UserRequest { seq, server_num, option: RequestOption::DEFAULT, detail: detail.to_owned() };
    req.encode().freeze().to_vec()
}

fn server_ips(reply: &WizardReply) -> Vec<Ip> {
    reply.servers.iter().map(|e| e.ip).collect()
}

/// Run the simulated backend: reports arrive at t=0 through the system
/// monitor's real ingest path, the request frame is sent after
/// `request_at_secs` of virtual time, and the raw reply datagram bytes are
/// captured at the client's UDP binding.
fn sim_reply(reports: &[Vec<u8>], request_at_secs: u64, request: &[u8]) -> Vec<u8> {
    let mut b = NetworkBuilder::new(11);
    let w = b.host("wizard", WIZ_IP, HostParams::testbed());
    let c = b.host("client", CLIENT_IP, HostParams::testbed());
    b.duplex(w, c, LinkParams::lan_100mbps());
    let net = b.build();

    let (sysdb, netdb, secdb) = shared_dbs();
    let mut s = Scheduler::new();
    let sysmon = SystemMonitor::new(WIZ_IP, sysdb.clone(), SysMonConfig::default());
    sysmon.start(&mut s, &net);
    let wiz = Wizard::new(WIZ_IP, net.clone(), sysdb, netdb, secdb, WizardConfig::default());
    wiz.start(&mut s);

    let client_ep = Endpoint::new(CLIENT_IP, 50001);
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    net.bind_udp(client_ep, move |_s, d| {
        *g.borrow_mut() = Some(d.payload.data.to_vec());
    });

    for r in reports {
        net.send_udp(&mut s, client_ep, sysmon.endpoint(), Payload::data(r.clone()), None);
    }
    s.run_until(SimTime::from_secs(request_at_secs));
    net.send_udp(&mut s, client_ep, wiz.endpoint(), Payload::data(request.to_vec()), None);
    s.run_until(s.now() + SimDuration::from_secs(2));

    let bytes = got.borrow_mut().take().expect("sim wizard replied");
    bytes
}

/// Run the live backend: the same report bytes arrive over real UDP, the
/// manual clock advances `advance_secs` (the live analogue of virtual
/// time passing), and the same request frame is sent — optionally through
/// a fault shim — from a plain UDP socket that retries on timeout.
/// Returns the raw reply bytes plus how many datagrams the shim dropped.
fn live_reply(
    reports: &[Vec<u8>],
    advance_secs: u64,
    request: &[u8],
    shim_policy: Option<ShimPolicy>,
) -> (Vec<u8>, u64) {
    let (clock, hand) = Clock::manual();
    let wiz = LiveWizard::spawn_with("127.0.0.1:0", SelectPolicy::default(), clock).unwrap();

    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
    for r in reports {
        sender.send_to(r, wiz.addr()).unwrap();
    }
    for _ in 0..400 {
        if wiz.reports_ingested() >= reports.len() as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(wiz.reports_ingested(), reports.len() as u64, "live wizard ingested every report");
    hand.advance_secs(advance_secs);

    let shim = shim_policy.map(|p| FaultShim::spawn(wiz.addr(), p).unwrap());
    let target = shim.as_ref().map_or(wiz.addr(), |sh| sh.addr());

    let client = UdpSocket::bind("127.0.0.1:0").unwrap();
    client.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
    let mut reply = None;
    let mut buf = [0u8; 2048];
    for _attempt in 0..5 {
        client.send_to(request, target).unwrap();
        match client.recv_from(&mut buf) {
            Ok((n, _)) => {
                reply = Some(buf[..n].to_vec());
                break;
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue; // lost datagram — retransmit the same frame
            }
            Err(e) => panic!("live recv failed: {e}"),
        }
    }
    let dropped = shim.as_ref().map_or(0, FaultShim::dropped);
    drop(shim);
    wiz.shutdown().unwrap();
    (reply.expect("live wizard replied"), dropped)
}

// ---------------------------------------------------------------------
// Scenario 1: basic selection.
// ---------------------------------------------------------------------
#[test]
fn basic_selection_reply_frames_are_byte_identical() {
    let reports = vec![
        report_bytes("alpha", 1, 0.97),
        report_bytes("busy", 2, 0.10),
        report_bytes("gamma", 3, 0.93),
    ];
    let request = request_bytes(0xA1A1_0001, 5, "host_cpu_free > 0.9\n");

    let sim = sim_reply(&reports, 1, &request);
    let (live, _) = live_reply(&reports, 0, &request, None);
    assert_eq!(sim, live, "reply frames differ between backends");

    let reply = WizardReply::decode(&live).unwrap();
    assert_eq!(reply.seq, 0xA1A1_0001, "sequence echo");
    assert_eq!(
        server_ips(&reply),
        vec![Ip::new(10, 0, 9, 1), Ip::new(10, 0, 9, 3)],
        "both idle servers, busy one filtered, address order"
    );
}

// ---------------------------------------------------------------------
// Scenario 2: requirement-language deny/prefer lists.
// ---------------------------------------------------------------------
#[test]
fn deny_and_prefer_lists_filter_and_order_identically() {
    let reports = vec![
        report_bytes("alpha", 1, 0.95),
        report_bytes("beta", 2, 0.95),
        report_bytes("gamma", 3, 0.95),
    ];
    let request = request_bytes(
        0xA1A1_0002,
        5,
        "host_cpu_free > 0.5\nuser_denied_host1 = beta\nuser_preferred_host1 = gamma\n",
    );

    let sim = sim_reply(&reports, 1, &request);
    let (live, _) = live_reply(&reports, 0, &request, None);
    assert_eq!(sim, live, "reply frames differ between backends");

    let reply = WizardReply::decode(&live).unwrap();
    assert_eq!(
        server_ips(&reply),
        vec![Ip::new(10, 0, 9, 3), Ip::new(10, 0, 9, 1)],
        "preferred gamma first, denied beta absent"
    );
}

// ---------------------------------------------------------------------
// Scenario 3: multi-server top-up — ask past the pool and get a short
// reply; ask under it and get exactly server_num.
// ---------------------------------------------------------------------
#[test]
fn server_num_cap_and_short_replies_are_identical() {
    let reports: Vec<Vec<u8>> =
        (1..=4).map(|i| report_bytes(&format!("pool{i}"), i, 0.92)).collect();

    // Under the pool: truncated to server_num, address order.
    let truncating = request_bytes(0xA1A1_0003, 3, "");
    let sim = sim_reply(&reports, 1, &truncating);
    let (live, _) = live_reply(&reports, 0, &truncating, None);
    assert_eq!(sim, live, "truncated reply frames differ");
    assert_eq!(WizardReply::decode(&live).unwrap().servers.len(), 3);

    // Past the pool: a short reply carrying every qualified server.
    let short = request_bytes(0xA1A1_0004, 60, "");
    let sim = sim_reply(&reports, 1, &short);
    let (live, _) = live_reply(&reports, 0, &short, None);
    assert_eq!(sim, live, "short reply frames differ");
    let reply = WizardReply::decode(&live).unwrap();
    assert_eq!(
        server_ips(&reply),
        (1..=4).map(|i| Ip::new(10, 0, 9, i)).collect::<Vec<_>>(),
        "all four offered when the pool is smaller than server_num"
    );
}

// ---------------------------------------------------------------------
// Scenario 4: stale-report expiry — virtual time in the simulator,
// manual clock in the live daemon; both cross the 6 s staleness window.
// ---------------------------------------------------------------------
#[test]
fn stale_reports_expire_identically_under_both_clocks() {
    let reports = vec![report_bytes("fading", 1, 0.97)];
    let request = request_bytes(0xA1A1_0005, 5, "host_cpu_free > 0.9\n");

    let sim = sim_reply(&reports, 10, &request);
    let (live, _) = live_reply(&reports, 10, &request, None);
    assert_eq!(sim, live, "stale-expiry reply frames differ");

    let reply = WizardReply::decode(&live).unwrap();
    assert_eq!(reply.seq, 0xA1A1_0005, "empty reply still echoes the sequence");
    assert!(reply.servers.is_empty(), "the 10 s old report is past the 6 s window");
}

// ---------------------------------------------------------------------
// Scenario 5: retry after a dropped datagram — the live request passes a
// socket-level fault shim that eats the first frame (the live analogue of
// the fault catalogue's loss spikes); the client's retransmission carries
// the identical bytes, so the eventual reply must still match the
// loss-free simulator run.
// ---------------------------------------------------------------------
#[test]
fn retry_after_drop_converges_to_the_loss_free_reply() {
    let reports = vec![
        report_bytes("alpha", 1, 0.97),
        report_bytes("busy", 2, 0.10),
        report_bytes("gamma", 3, 0.93),
    ];
    let request = request_bytes(0xA1A1_0006, 5, "host_cpu_free > 0.9\n");

    let sim = sim_reply(&reports, 1, &request);
    let (live, dropped) =
        live_reply(&reports, 0, &request, Some(ShimPolicy { drop_requests: 1, drop_replies: 0 }));
    assert_eq!(dropped, 1, "the shim ate exactly the first request frame");
    assert_eq!(sim, live, "post-retry reply frame differs from the loss-free sim reply");

    let reply = WizardReply::decode(&live).unwrap();
    assert_eq!(server_ips(&reply), vec![Ip::new(10, 0, 9, 1), Ip::new(10, 0, 9, 3)]);
}

// ---------------------------------------------------------------------
// Scenario 6: the report frames themselves — the probe engine's ASCII
// encoding round-trips through both ingest paths into identical database
// rows, proven end-to-end by the replies above and directly here.
// ---------------------------------------------------------------------
#[test]
fn report_frames_round_trip_identically_through_both_ingest_paths() {
    let bytes = report_bytes("echo", 7, 0.88);
    // The frame respects the paper's size bound and decodes to itself.
    assert!(bytes.len() < 200, "report frame stays under the paper's 200-byte bound");
    let text = std::str::from_utf8(&bytes).unwrap();
    let decoded = ServerStatusReport::parse_ascii(text).unwrap();
    assert_eq!(decoded.encode_ascii().into_bytes(), bytes, "ASCII encoding is canonical");

    // Both backends accept it and offer the claimed endpoint back.
    let request = request_bytes(0xA1A1_0007, 1, "host_cpu_free > 0.8\n");
    let sim = sim_reply(std::slice::from_ref(&bytes), 1, &request);
    let (live, _) = live_reply(&[bytes], 0, &request, None);
    assert_eq!(sim, live);
    let reply = WizardReply::decode(&live).unwrap();
    assert_eq!(server_ips(&reply), vec![Ip::new(10, 0, 9, 7)]);
}
