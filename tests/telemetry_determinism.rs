//! The telemetry subsystem's determinism contract, end to end: two runs of
//! the same seeded scenario — including scripted fault injection — export
//! byte-identical JSONL traces, a streaming sink at any buffer size emits
//! those same bytes, and the histogram edge cases behave at the public API.

use std::cell::RefCell;
use std::rc::Rc;

use smartsock::client::RequestSpec;
use smartsock::{SockGroup, Testbed};
use smartsock_faults::{Daemon, FaultKind, FaultPlan};
use smartsock_proto::consts::ports;
use smartsock_proto::Endpoint;
use smartsock_sim::{Scheduler, SimDuration, SimTime, Telemetry};
use smartsock_telemetry::{RollupSink, SharedBuf, Sink, StreamSink};

/// One full scripted run with the given telemetry sink installed: testbed
/// up, a repairing socket group, a fault plan that crashes a server and
/// kills the wizard, everything traced. Returns the scheduler so callers
/// can export, finish, or inspect the sink.
fn scripted_run(seed: u64, sink: Option<Box<dyn Sink>>) -> Scheduler {
    let (mut s, tb) = Testbed::paper(seed);
    if let Some(sink) = sink {
        s.telemetry.set_sink(sink);
    }
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    s.run_until(SimTime::from_secs(10));

    let client = tb.client("sagit");
    let slot = Rc::new(RefCell::new(None));
    let g = Rc::clone(&slot);
    SockGroup::request(
        &client,
        &mut s,
        RequestSpec::new("host_cpu_free > 0.9\nuser_denied_host1 = sagit\n", 3),
        move |_s, r| *g.borrow_mut() = Some(r.expect("group forms")),
    );
    s.run_until(s.now() + SimDuration::from_secs(3));
    let group = slot.borrow_mut().take().expect("request completed");
    let _guard = group.auto_repair(&mut s, SimDuration::from_secs(2));

    let inj = tb.fault_injector();
    let ep = tb.service_endpoint("telesto");
    let net = tb.net.clone();
    inj.on_reboot("telesto", move |_s| net.bind_stream(ep, |_s, _m| {}));
    let t0 = s.now();
    let plan = FaultPlan::new()
        .at(t0 + SimDuration::from_secs(2), FaultKind::HostCrash { host: "telesto".to_owned() })
        .at(t0 + SimDuration::from_secs(20), FaultKind::HostReboot { host: "telesto".to_owned() })
        .at(t0 + SimDuration::from_secs(5), FaultKind::DaemonKill { daemon: Daemon::Wizard })
        .at(t0 + SimDuration::from_secs(9), FaultKind::DaemonRestart { daemon: Daemon::Wizard });
    inj.schedule(&mut s, &plan);
    s.run_until(t0 + SimDuration::from_secs(40));
    s
}

/// The accumulated JSONL export of one scripted run.
fn traced_run(seed: u64) -> String {
    scripted_run(seed, None).telemetry.export_jsonl()
}

#[test]
fn same_seed_exports_byte_identical_traces_under_faults() {
    let a = traced_run(424242);
    let b = traced_run(424242);
    assert_eq!(a, b, "same seed must reproduce the trace byte for byte");
    assert!(a.lines().any(|l| l.contains("\"fault-injected\"")), "faults were traced");
    assert!(a.lines().any(|l| l.contains("\"fault-recovered\"")), "recoveries were traced");
    assert!(a.lines().any(|l| l.contains("\"client-request\"")), "request spans were traced");

    let c = traced_run(424243);
    assert_ne!(a, c, "a different seed perturbs the trace");
}

/// The core streaming invariant: whatever the buffer size — flushing on
/// every record (1), at an awkward prime boundary (7), or rarely (4096) —
/// the bytes a `StreamSink` emits for the fault-plan scenario are exactly
/// the bytes the default accumulator exports at the end.
#[test]
fn stream_sink_is_byte_identical_to_accum_at_every_buffer_size() {
    let seed = 424242;
    let accumulated = traced_run(seed);
    for cap in [1usize, 7, 4096] {
        let buf = SharedBuf::new();
        let sink = StreamSink::new(Box::new(buf.clone()), cap);
        let mut s = scripted_run(seed, Some(Box::new(sink)));
        // Flush residual lines and the summary tail.
        s.telemetry.finish();
        let streamed = String::from_utf8(buf.contents()).expect("JSONL is UTF-8");
        assert_eq!(
            streamed, accumulated,
            "StreamSink(cap={cap}) diverged from the accumulated export"
        );
        assert_eq!(s.telemetry.dropped(), 0, "nothing may drop on a healthy writer");
    }
}

/// The rollup's totals must agree with the accumulated trace: same number
/// of records folded, same per-name span counts — just bounded by name ×
/// scope cardinality instead of run length.
#[test]
fn rollup_sink_totals_equal_the_accumulated_summary() {
    let seed = 424242;
    let accumulated = traced_run(seed);
    let record_lines = accumulated
        .lines()
        .filter(|l| {
            l.starts_with("{\"t\":\"span-start\"")
                || l.starts_with("{\"t\":\"span-end\"")
                || l.starts_with("{\"t\":\"event\"")
        })
        .count() as u64;
    let span_ends = |name: &str| {
        accumulated
            .lines()
            .filter(|l| {
                l.starts_with("{\"t\":\"span-end\"") && l.contains(&format!("\"name\":\"{name}\""))
            })
            .count() as u64
    };
    let events = |name: &str| {
        accumulated
            .lines()
            .filter(|l| {
                l.starts_with("{\"t\":\"event\"") && l.contains(&format!("\"name\":\"{name}\""))
            })
            .count() as u64
    };

    let s = scripted_run(seed, Some(Box::new(RollupSink::new())));
    let rollup = s.telemetry.rollup().expect("rollup sink exposes its rollup");
    assert_eq!(rollup.records(), record_lines, "every record folds exactly once");
    for name in ["client-request", "wizard-match", "probe-report"] {
        assert_eq!(
            rollup.total(name),
            span_ends(name),
            "rollup total for span {name} disagrees with the trace"
        );
    }
    for name in ["fault-injected", "fault-recovered"] {
        assert_eq!(
            rollup.total(name),
            events(name),
            "rollup total for event {name} disagrees with the trace"
        );
    }
}

#[test]
fn empty_histograms_do_not_exist() {
    let t = Telemetry::new();
    assert!(t.histogram("never-observed").is_none());
    let mut t = Telemetry::new();
    t.counter_incr("some-counter");
    assert!(t.histogram("some-counter").is_none(), "counters are not histograms");
}

#[test]
fn single_sample_histograms_report_that_sample_at_every_quantile() {
    let mut t = Telemetry::new();
    t.observe_ns("lone-sample", 12_345);
    let h = t.histogram("lone-sample").expect("summary exists");
    assert_eq!(h.count, 1);
    assert_eq!(h.sum, 12_345);
    assert_eq!((h.min, h.max), (12_345, 12_345));
    assert_eq!((h.p50, h.p95, h.p99), (12_345, 12_345, 12_345));
}

#[test]
fn saturated_top_bucket_clamps_to_the_observed_max() {
    let mut t = Telemetry::new();
    t.observe_ns("huge", u64::MAX);
    t.observe_ns("huge", u64::MAX - 1);
    let h = t.histogram("huge").expect("summary exists");
    assert_eq!(h.count, 2);
    assert_eq!(h.max, u64::MAX);
    assert!(h.p50 >= h.min && h.p99 <= h.max, "quantiles stay within [min, max]");
    assert_eq!(h.p99, u64::MAX, "top-rank quantile clamps to max, not past it");
}
