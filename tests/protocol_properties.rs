//! Property-based tests of the wire formats and network-model invariants.

use bytes::BytesMut;
use proptest::prelude::*;

use smartsock_net::packet::{fragment_sizes, udp_wire_size};
use smartsock_proto::{
    Endpoint, Frame, Ip, NetPathRecord, RequestOption, SecurityRecord, ServerStatusReport,
    UserRequest, WizardReply,
};

fn arb_ip() -> impl Strategy<Value = Ip> {
    any::<u32>().prop_map(Ip)
}

fn arb_report() -> impl Strategy<Value = ServerStatusReport> {
    (
        "[a-z][a-z0-9-]{0,14}",
        arb_ip(),
        0.0f64..100.0,
        proptest::collection::vec(0u64..1u64 << 33, 5),
        0.0f64..1e8,
    )
        .prop_map(|(host, ip, load, mems, rate)| {
            let mut r = ServerStatusReport::empty(host.as_str(), ip);
            r.load1 = load;
            r.load5 = load / 2.0;
            r.cpu_idle = 0.5;
            r.cpu_user = 0.5;
            r.mem_total = mems[0];
            r.mem_used = mems[1];
            r.mem_free = mems[2];
            r.mem_buffers = mems[3];
            r.mem_cached = mems[4];
            r.disk_rblocks = mems[0] % 100_000;
            r.net_tbytes_ps = rate;
            r.timestamp_ns = mems[1];
            r
        })
}

proptest! {
    /// Every generated report's ASCII encoding stays under the paper's
    /// 200-byte bound and round-trips its integer fields exactly.
    #[test]
    fn ascii_report_roundtrip_and_bound(r in arb_report()) {
        let line = r.encode_ascii();
        prop_assert!(line.len() < 200, "{} bytes", line.len());
        let back = ServerStatusReport::parse_ascii(&line).unwrap();
        prop_assert_eq!(back.host, r.host);
        prop_assert_eq!(back.ip, r.ip);
        prop_assert_eq!(back.mem_total, r.mem_total);
        prop_assert_eq!(back.mem_free, r.mem_free);
        prop_assert_eq!(back.disk_rblocks, r.disk_rblocks);
        prop_assert!((back.load1 - r.load1).abs() <= 0.005);
    }

    /// The binary record is always exactly 204 bytes and round-trips.
    #[test]
    fn binary_report_roundtrip(r in arb_report()) {
        let mut buf = BytesMut::new();
        r.encode_binary(&mut buf);
        prop_assert_eq!(buf.len(), 204);
        let back = ServerStatusReport::decode_binary(&mut buf).unwrap();
        prop_assert_eq!(back.ip, r.ip);
        prop_assert_eq!(back.timestamp_ns, r.timestamp_ns);
        prop_assert_eq!(back.mem_cached, r.mem_cached);
    }

    /// Frames of arbitrary record batches round-trip over a reassembled
    /// byte stream, even when delivered in two arbitrary chunks.
    #[test]
    fn frame_roundtrip_with_arbitrary_split(
        reports in proptest::collection::vec(arb_report(), 0..20),
        split in 0usize..200,
    ) {
        let frame = Frame::system(&reports);
        let mut wire = BytesMut::new();
        frame.encode(&mut wire);
        let cut = split.min(wire.len());
        let mut rx = BytesMut::new();
        rx.extend_from_slice(&wire[..cut]);
        if cut < wire.len() {
            prop_assert!(Frame::decode(&mut rx).unwrap().is_none() || cut >= frame.wire_len());
            rx.extend_from_slice(&wire[cut..]);
        }
        let got = Frame::decode(&mut rx).unwrap().unwrap();
        prop_assert_eq!(got.decode_system().unwrap().len(), reports.len());
    }

    /// User requests round-trip for any detail text and option bits.
    #[test]
    fn user_request_roundtrip(
        seq in any::<u32>(),
        n in any::<u16>(),
        accept in any::<bool>(),
        template in proptest::option::of(any::<u8>()),
        detail in "[ -~\n]{0,300}",
    ) {
        let req = UserRequest {
            seq,
            server_num: n,
            option: RequestOption { accept_fewer: accept, template },
            detail,
        };
        let wire = req.encode();
        prop_assert_eq!(UserRequest::decode(&wire).unwrap(), req);
    }

    /// Wizard replies round-trip for any legal server list.
    #[test]
    fn wizard_reply_roundtrip(
        seq in any::<u32>(),
        servers in proptest::collection::vec((arb_ip(), any::<u16>()), 0..=60),
    ) {
        let reply = WizardReply {
            seq,
            servers: servers.into_iter().map(|(ip, p)| Endpoint::new(ip, p)).collect(),
        };
        let wire = reply.encode();
        prop_assert_eq!(WizardReply::decode(&wire).unwrap(), reply);
    }

    /// Random prefixes of a valid reply never decode successfully
    /// (truncation is always detected).
    #[test]
    fn truncated_replies_are_rejected(
        servers in proptest::collection::vec(arb_ip(), 1..=10),
        frac in 0.0f64..0.99,
    ) {
        let reply = WizardReply {
            seq: 7,
            servers: servers.into_iter().map(|ip| Endpoint::new(ip, 1200)).collect(),
        };
        let wire = reply.encode();
        let cut = ((wire.len() as f64) * frac) as usize;
        prop_assert!(WizardReply::decode(&wire[..cut]).is_err());
    }

    /// Network/security records round-trip.
    #[test]
    fn net_and_sec_record_roundtrip(
        from in arb_ip(), to in arb_ip(),
        delay in 0.0f64..1e4, bw in 0.0f64..1e4,
        level in any::<i32>(),
    ) {
        let rec = NetPathRecord { from_monitor: from, to_monitor: to, delay_ms: delay, bw_mbps: bw, timestamp_ns: 9 };
        let mut buf = BytesMut::new();
        rec.encode_binary(&mut buf);
        prop_assert_eq!(NetPathRecord::decode_binary(&mut buf).unwrap(), rec);

        let sec = SecurityRecord { host: "h".into(), ip: from, level };
        let mut buf = BytesMut::new();
        sec.encode_binary(&mut buf);
        prop_assert_eq!(SecurityRecord::decode_binary(&mut buf).unwrap(), sec);
    }

    /// Fragmentation conserves payload bytes, never exceeds the MTU, and
    /// its fragment count is monotone in the payload size.
    #[test]
    fn fragmentation_invariants(payload in 0u64..100_000, mtu in 100u32..9000) {
        let frags = fragment_sizes(payload, mtu);
        let total: u64 = frags.iter().sum();
        let n = frags.len() as u64;
        prop_assert_eq!(total, payload + 8 + 20 * n);
        prop_assert!(frags.iter().all(|&f| f <= u64::from(mtu.max(28))));
        let frags_bigger = fragment_sizes(payload + 1480, mtu);
        prop_assert!(frags_bigger.len() >= frags.len());
        prop_assert!(udp_wire_size(payload) == payload + 28);
    }

    /// Endpoint display/parse round-trips.
    #[test]
    fn endpoint_roundtrip(ip in arb_ip(), port in any::<u16>()) {
        let e = Endpoint::new(ip, port);
        prop_assert_eq!(e.to_string().parse::<Endpoint>().unwrap(), e);
    }
}
