//! Property-based tests of the simulation substrates: scheduler ordering,
//! host accounting and network conservation laws.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use smartsock_hostsim::{CpuModel, Host, HostConfig};
use smartsock_net::{HostParams, LinkParams, NetworkBuilder, Payload};
use smartsock_proto::{Endpoint, Ip};
use smartsock_sim::{Scheduler, SimDuration, SimTime};

proptest! {
    /// Events always execute in nondecreasing time order, whatever order
    /// they were scheduled in.
    #[test]
    fn scheduler_executes_in_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..60)) {
        let mut s = Scheduler::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &t in &times {
            let log = Rc::clone(&log);
            s.schedule_at(SimTime(t), move |s| log.borrow_mut().push(s.now().0));
        }
        s.run();
        let executed = log.borrow();
        prop_assert_eq!(executed.len(), times.len());
        prop_assert!(executed.windows(2).all(|w| w[0] <= w[1]), "out of order: {executed:?}");
        let mut expected = times.clone();
        expected.sort_unstable();
        prop_assert_eq!(&*executed, &expected);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn scheduler_cancellation_is_exact(
        times in proptest::collection::vec(1u64..1000, 1..40),
        cancel_mask in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let mut s = Scheduler::new();
        let hits = Rc::new(RefCell::new(0usize));
        let mut cancelled = 0;
        for (i, &t) in times.iter().enumerate() {
            let h = Rc::clone(&hits);
            let id = s.schedule_at(SimTime(t), move |_| *h.borrow_mut() += 1);
            if *cancel_mask.get(i).unwrap_or(&false) {
                s.cancel(id);
                cancelled += 1;
            }
        }
        s.run();
        prop_assert_eq!(*hits.borrow(), times.len() - cancelled);
    }

    /// A compute task's completion time equals work/rate when alone, and
    /// total CPU time is conserved under any interleaving of two tasks.
    #[test]
    fn cpu_time_is_conserved(work1 in 1e6f64..1e8, work2 in 1e6f64..1e8, stagger_ms in 0u64..2000) {
        let host = Host::new(HostConfig::new("h", Ip::new(10, 0, 0, 1), CpuModel::P4_1700, 512));
        let rate = CpuModel::P4_1700.compute_rate;
        let mut s = Scheduler::new();
        let done: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let d = Rc::clone(&done);
            host.spawn_compute(&mut s, work1, 1 << 20, move |s| {
                d.borrow_mut().push(s.now().as_secs_f64())
            }).unwrap();
        }
        {
            let host2 = host.clone();
            let d = Rc::clone(&done);
            s.schedule_in(SimDuration::from_millis(stagger_ms), move |s| {
                host2.spawn_compute(s, work2, 1 << 20, move |s| {
                    d.borrow_mut().push(s.now().as_secs_f64())
                }).unwrap();
            });
        }
        s.run();
        let finish = done.borrow();
        prop_assert_eq!(finish.len(), 2);
        // Conservation: the CPU is busy from 0 until the last completion
        // with no idle gaps (work backlog permitting), so
        // total work == rate × busy time.
        let stagger = stagger_ms as f64 / 1e3;
        let solo1_end = work1 / rate;
        let busy = if stagger >= solo1_end {
            // No overlap: two separate busy intervals.
            solo1_end + work2 / rate
        } else {
            finish.iter().cloned().fold(0.0, f64::max)
        };
        // Either way the CPU executes work1 + work2 at `rate`; in the
        // overlapping case it is one contiguous busy period starting at 0.
        let expected_busy = (work1 + work2) / rate;
        prop_assert!((busy - expected_busy).abs() < 1e-6 * expected_busy.max(1.0) + 1e-6,
            "busy {busy} vs expected {expected_busy}");
    }

    /// Datagram delivery count equals send count on a lossless network,
    /// and payload sizes survive transit.
    #[test]
    fn lossless_delivery_conserves_datagrams(sizes in proptest::collection::vec(1u64..10_000, 1..30)) {
        let mut b = NetworkBuilder::new(9);
        let a = b.host("a", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let r = b.router("r", Ip::new(10, 0, 0, 254));
        let c = b.host("c", Ip::new(10, 0, 1, 1), HostParams::testbed());
        b.duplex(a, r, LinkParams::lan_100mbps());
        b.duplex(r, c, LinkParams::lan_100mbps());
        let net = b.build();
        let mut s = Scheduler::new();
        let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&got);
        let dst = Endpoint::new(Ip::new(10, 0, 1, 1), 1200);
        net.bind_udp(dst, move |_s, d| sink.borrow_mut().push(d.payload.len()));
        for &size in &sizes {
            net.send_udp(&mut s, Endpoint::new(Ip::new(10, 0, 0, 1), 40000), dst, Payload::zeroes(size), None);
        }
        s.run();
        let mut received = got.borrow().clone();
        let mut sent = sizes.clone();
        received.sort_unstable();
        sent.sort_unstable();
        prop_assert_eq!(received, sent);
    }

    /// Flow completion time equals bytes/bottleneck for a single flow,
    /// for any byte count and bottleneck rate.
    #[test]
    fn single_flow_timing_is_exact(bytes in 1_000u64..50_000_000, rate_mbps in 1u32..1000) {
        let mut b = NetworkBuilder::new(11);
        let a = b.host("a", Ip::new(10, 0, 0, 1), HostParams::testbed());
        let c = b.host("c", Ip::new(10, 0, 0, 2), HostParams::testbed());
        b.duplex(a, c, LinkParams::lan_100mbps().with_rate(f64::from(rate_mbps) * 1e6));
        let net = b.build();
        let mut s = Scheduler::new();
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        net.start_flow(&mut s, a, c, bytes, move |s, _| *d.borrow_mut() = Some(s.now().as_secs_f64()));
        s.run();
        let t = done.borrow().expect("flow completes");
        let expected = bytes as f64 * 8.0 / (f64::from(rate_mbps) * 1e6);
        prop_assert!((t - expected).abs() < expected * 1e-6 + 1e-6, "t={t} expected={expected}");
    }

    /// The loadavg EMA never exceeds the maximum queue length seen and
    /// never goes negative.
    #[test]
    fn loadavg_is_bounded_by_queue_extremes(queue_lens in proptest::collection::vec(0usize..8, 1..30)) {
        use smartsock_hostsim::load::LoadAvg;
        let mut l = LoadAvg::default();
        let max_q = *queue_lens.iter().max().expect("non-empty") as f64;
        let mut t = 0u64;
        for &q in &queue_lens {
            l.set_queue_len(SimTime::from_secs(t), q);
            t += 30;
        }
        let (l1, l5, l15) = l.sample(SimTime::from_secs(t));
        for v in [l1, l5, l15] {
            prop_assert!(v >= -1e-12 && v <= max_q + 1e-9, "load {v} outside [0, {max_q}]");
        }
    }
}
