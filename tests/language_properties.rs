//! Property-based tests of the requirement meta language.

use proptest::prelude::*;

use smartsock_lang::{compile, Evaluator, Lexer, MapVars, Requirement, Token};

// ----------------------------------------------------------------------
// Generators
// ----------------------------------------------------------------------

/// A random syntactically valid arithmetic/logical expression.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..10000).prop_map(|n| n.to_string()),
        (0u32..100, 1u32..100).prop_map(|(a, b)| format!("{a}.{b}")),
        Just("host_cpu_free".to_owned()),
        Just("host_system_load1".to_owned()),
        Just("tempvar".to_owned()),
        Just("PI".to_owned()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(depth - 1);
    prop_oneof![
        4 => leaf,
        2 => (sub.clone(), prop_oneof![Just("+"), Just("-"), Just("*"), Just("&&"), Just("||"), Just("<"), Just("<="), Just(">"), Just(">="), Just("=="), Just("!=")], sub.clone())
            .prop_map(|(a, op, b)| format!("({a}) {op} ({b})")),
        1 => (prop_oneof![Just("sin"), Just("cos"), Just("exp"), Just("log10"), Just("sqrt"), Just("abs")], sub.clone())
            .prop_map(|(f, a)| format!("{f}(({a}))")),
        1 => sub.prop_map(|a| format!("-({a})")),
    ]
    .boxed()
}

fn arb_requirement() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_expr(3), 1..5).prop_map(|exprs| {
        let mut out = String::from("tempvar = 1\n");
        for e in exprs {
            out.push_str(&e);
            out.push('\n');
        }
        out
    })
}

fn provider() -> MapVars {
    MapVars::new().with("host_cpu_free", 0.9).with("host_system_load1", 0.3)
}

// ----------------------------------------------------------------------
// Properties
// ----------------------------------------------------------------------

proptest! {
    /// The lexer never panics, whatever bytes it is fed.
    #[test]
    fn lexer_total_on_arbitrary_ascii(input in "[ -~\n\t]{0,200}") {
        let _ = Lexer::new(&input).tokenize();
    }

    /// Generated well-formed requirements always compile.
    #[test]
    fn generated_requirements_compile(src in arb_requirement()) {
        let compiled = compile(&src);
        prop_assert!(compiled.is_ok(), "failed on {src:?}: {compiled:?}");
    }

    /// Evaluation is total (no panics) and deterministic.
    #[test]
    fn evaluation_is_total_and_deterministic(src in arb_requirement()) {
        let req = compile(&src).unwrap();
        let p = provider();
        let a = Evaluator::evaluate(&req, &p);
        let b = Evaluator::evaluate(&req, &p);
        prop_assert_eq!(a, b);
    }

    /// Division by a nonzero constant never produces the division error.
    #[test]
    fn division_by_nonzero_is_fine(d in 1u32..1000) {
        let src = format!("x = 10 / {d}\nx >= 0\n");
        let req = compile(&src).unwrap();
        let decision = Evaluator::evaluate(&req, &provider());
        prop_assert!(decision.errors.is_empty());
        prop_assert!(decision.qualified);
    }

    /// Comment and whitespace insertion never changes the statement list.
    #[test]
    fn comments_are_transparent(extra in "[a-z #]{0,30}") {
        let plain = "host_cpu_free > 0.5\nhost_system_load1 < 1\n";
        let commented = format!("# {extra}\nhost_cpu_free > 0.5\n   # mid {extra}\nhost_system_load1 < 1\n#{extra}");
        let a = compile(plain).unwrap();
        let b = compile(&commented).unwrap();
        prop_assert_eq!(a.stmts, b.stmts);
    }

    /// `a <= b` agrees with `a < b || a == b` on every input pair — the
    /// Fig 4.2 disjunction spelling.
    #[test]
    fn le_matches_its_disjunction(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let vars = MapVars::new().with("host_cpu_free", a).with("host_system_load1", b);
        let le = Evaluator::evaluate(
            &compile("host_cpu_free <= host_system_load1\n").unwrap(), &vars);
        let dis = Evaluator::evaluate(
            &compile("(host_cpu_free < host_system_load1) || (host_cpu_free == host_system_load1)\n").unwrap(), &vars);
        prop_assert_eq!(le.qualified, dis.qualified);
    }

    /// Adding a tautology never disqualifies; adding a contradiction
    /// always disqualifies.
    #[test]
    fn monotonicity_of_statement_conjunction(src in arb_requirement()) {
        let req = compile(&src).unwrap();
        let base = Evaluator::evaluate(&req, &provider());

        let with_taut = compile(&format!("{src}100 > 0\n")).unwrap();
        let t = Evaluator::evaluate(&with_taut, &provider());
        prop_assert_eq!(t.qualified, base.qualified, "tautology changed the verdict");

        let with_contra = compile(&format!("{src}0 > 100\n")).unwrap();
        let c = Evaluator::evaluate(&with_contra, &provider());
        prop_assert!(!c.qualified, "contradiction must disqualify");
    }

    /// Pretty-printing a compiled requirement and recompiling yields the
    /// same statements — Display and the parser agree on precedence.
    #[test]
    fn pretty_print_roundtrip(src in arb_requirement()) {
        let req = compile(&src).unwrap();
        let text = req.to_text();
        let back = compile(&text).unwrap_or_else(|e| panic!("re-parse of {text:?} failed: {e}"));
        prop_assert_eq!(back.stmts, req.stmts);
    }

    /// Numbers survive the lexer round trip.
    #[test]
    fn number_lexing_roundtrip(n in 0u32..1_000_000) {
        let toks = Lexer::new(&n.to_string()).tokenize().unwrap();
        prop_assert_eq!(&toks[0], &Token::Number(f64::from(n)));
    }

    /// Dotted quads always lex as NETADDR, never as numbers.
    #[test]
    fn dotted_quads_lex_as_netaddr(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 0u8..=255) {
        let s = format!("{a}.{b}.{c}.{d}");
        let toks = Lexer::new(&s).tokenize().unwrap();
        prop_assert_eq!(&toks[0], &Token::NetAddr(s));
    }
}

#[test]
fn empty_requirement_always_qualifies() {
    let d = Evaluator::evaluate(&Requirement::empty(), &provider());
    assert!(d.qualified);
}
