//! Resilience under packet loss: every UDP-based component must keep
//! working when the network drops datagrams (probes are fire-and-forget,
//! the netmon guard tolerates missing echoes, the client retries).

use std::cell::RefCell;
use std::rc::Rc;

use smartsock_monitor::db::shared_dbs;
use smartsock_monitor::{NetMonConfig, NetworkMonitor, SysMonConfig, SystemMonitor};
use smartsock_net::{HostParams, LinkParams, Network, NetworkBuilder, Payload};
use smartsock_probe::{ProbeConfig, ServerProbe};
use smartsock_proto::consts::ports;
use smartsock_proto::{Endpoint, Ip};
use smartsock_sim::{Scheduler, SimTime};

fn lossy_pair(seed: u64, loss: f64) -> (Network, usize, usize) {
    let mut b = NetworkBuilder::new(seed);
    let a = b.host("alpha", Ip::new(10, 0, 0, 1), HostParams::testbed());
    let r = b.router("sw", Ip::new(10, 0, 0, 254));
    let c = b.host("beta", Ip::new(10, 0, 1, 1), HostParams::testbed());
    b.duplex(a, r, LinkParams::lan_100mbps().with_loss(loss));
    b.duplex(r, c, LinkParams::lan_100mbps().with_loss(loss));
    (b.build(), a, c)
}

#[test]
fn lossless_links_drop_nothing() {
    let (net, a, c) = lossy_pair(1, 0.0);
    let mut s = Scheduler::new();
    let hits = Rc::new(RefCell::new(0u32));
    let h = Rc::clone(&hits);
    let dst = Endpoint::new(net.ip_of(c), 1200);
    net.bind_udp(dst, move |_s, _d| *h.borrow_mut() += 1);
    for _ in 0..200 {
        net.send_udp(&mut s, Endpoint::new(net.ip_of(a), 40000), dst, Payload::zeroes(100), None);
    }
    s.run();
    assert_eq!(*hits.borrow(), 200);
    assert_eq!(s.telemetry.counter("net-udp-lost"), 0);
}

#[test]
fn loss_rate_is_roughly_the_configured_probability() {
    // 5% per fragment × 2 hops ⇒ ≈ 9.75% datagram loss for 1-fragment
    // datagrams.
    let (net, a, c) = lossy_pair(3, 0.05);
    let mut s = Scheduler::new();
    let hits = Rc::new(RefCell::new(0u32));
    let h = Rc::clone(&hits);
    let dst = Endpoint::new(net.ip_of(c), 1200);
    net.bind_udp(dst, move |_s, _d| *h.borrow_mut() += 1);
    let n = 2000u32;
    for _ in 0..n {
        net.send_udp(&mut s, Endpoint::new(net.ip_of(a), 40000), dst, Payload::zeroes(100), None);
    }
    s.run();
    let delivered = *hits.borrow();
    let rate = 1.0 - f64::from(delivered) / f64::from(n);
    assert!((rate - 0.0975).abs() < 0.03, "observed loss {rate:.3}");
    assert_eq!(u64::from(n - delivered), s.telemetry.counter("net-udp-lost"));
}

#[test]
fn fragmented_datagrams_are_more_exposed_to_loss() {
    let run = |payload: u64| {
        let (net, a, c) = lossy_pair(5, 0.02);
        let mut s = Scheduler::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = Rc::clone(&hits);
        let dst = Endpoint::new(net.ip_of(c), 1200);
        net.bind_udp(dst, move |_s, _d| *h.borrow_mut() += 1);
        for _ in 0..1500 {
            net.send_udp(
                &mut s,
                Endpoint::new(net.ip_of(a), 40000),
                dst,
                Payload::zeroes(payload),
                None,
            );
        }
        s.run();
        let hits = *hits.borrow();
        hits
    };
    let small = run(100); // 1 fragment
    let large = run(6000); // 5 fragments
    assert!(
        f64::from(large) < f64::from(small) * 0.95,
        "large datagrams must suffer more loss: {large} vs {small}"
    );
}

#[test]
fn system_monitor_keeps_fresh_state_despite_report_loss() {
    let (net, a, c) = lossy_pair(7, 0.05);
    let mut s = Scheduler::new();
    let (sysdb, _, _) = shared_dbs();
    let mon_ip = net.ip_of(c);
    let mon = SystemMonitor::new(mon_ip, sysdb, SysMonConfig::default());
    mon.start(&mut s, &net);
    let host = smartsock_hostsim::Host::new(smartsock_hostsim::HostConfig::new(
        "alpha",
        net.ip_of(a),
        smartsock_hostsim::CpuModel::P4_1700,
        256,
    ));
    ServerProbe::new(host, net.clone(), ProbeConfig::new(mon_ip)).start(&mut s);
    s.run_until(SimTime::from_secs(120));
    // ~60 reports at 90% delivery and a 3-interval expiry window: the
    // record stays live essentially always (back-to-back double loss is
    // rare), so the server is present at the end.
    assert_eq!(mon.live_servers(), 1);
    assert!(s.telemetry.counter("sysmon-reports") > 40);
}

#[test]
fn network_monitor_rounds_survive_echo_loss() {
    let (net, a, c) = lossy_pair(9, 0.05);
    let mut s = Scheduler::new();
    let (_, netdb, _) = shared_dbs();
    let mon = NetworkMonitor::new(net.ip_of(a), net.clone(), netdb, NetMonConfig::default());
    mon.add_peer(net.ip_of(c));
    mon.start(&mut s);
    s.run_until(SimTime::from_secs(120));
    // Rounds with lost echoes finalize via the guard; enough survive to
    // keep a record in the database.
    assert!(mon.rounds_completed() >= 10, "completed {}", mon.rounds_completed());
    let rec = mon.db().read().get(net.ip_of(a), net.ip_of(c)).copied();
    let rec = rec.expect("record survives loss");
    assert!(rec.bw_mbps > 50.0, "estimate {:.1} Mbps", rec.bw_mbps);
}

#[test]
fn client_retries_recover_lost_requests() {
    use smartsock::client::{RequestSpec, SmartClient};
    use smartsock_monitor::db::shared_dbs as dbs;
    use smartsock_proto::ServerStatusReport;
    use smartsock_wizard::{Wizard, WizardConfig};

    // 20% fragment loss per hop: each request/reply pair survives with
    // p ≈ 0.41, so with 8 retries a response is near-certain.
    let (net, a, c) = lossy_pair(11, 0.2);
    let mut s = Scheduler::new();
    let (sysdb, netdb, secdb) = dbs();
    sysdb.write().upsert(ServerStatusReport::empty("srv", net.ip_of(a)), SimTime::ZERO);
    let wiz = Wizard::new(
        net.ip_of(c),
        net.clone(),
        sysdb,
        netdb,
        secdb,
        WizardConfig { stale_max_age: None, ..Default::default() },
    );
    wiz.start(&mut s);
    net.bind_stream(Endpoint::new(net.ip_of(a), ports::SERVICE), |_s, _m| {});

    let client = SmartClient::new(net.clone(), net.ip_of(a), net.ip_of(c), 77);
    let mut spec = RequestSpec::new("", 1);
    spec.retries = 8;
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    client.request(&mut s, spec, move |_s, r| *g.borrow_mut() = Some(r));
    s.run();
    let res = got.borrow_mut().take().expect("callback fired");
    assert!(res.is_ok(), "retries should eventually win: {res:?}");
    assert!(s.telemetry.counter("client-retries") >= 1, "at least one retry happened");
}
