//! Cross-crate integration tests: the full probe → monitor → transmitter →
//! receiver → wizard → client pipeline on the paper testbed.

use std::cell::RefCell;
use std::rc::Rc;

use smartsock::client::{ClientError, RequestSpec};
use smartsock::Testbed;
use smartsock_hostsim::Workload;
use smartsock_proto::consts::ports;
use smartsock_proto::Endpoint;
use smartsock_sim::{Scheduler, SimDuration, SimTime};

fn with_services(seed: u64) -> (Scheduler, Testbed) {
    let (mut s, tb) = Testbed::paper(seed);
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    s.run_until(SimTime::from_secs(10));
    (s, tb)
}

fn request_names(
    s: &mut Scheduler,
    tb: &Testbed,
    requirement: &str,
    n: u16,
) -> Result<Vec<String>, ClientError> {
    let client = tb.client("sagit");
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    client.request(s, RequestSpec::new(requirement, n), move |_s, r| {
        *g.borrow_mut() = Some(r);
    });
    s.run_until(s.now() + SimDuration::from_secs(8));
    let res = got.borrow_mut().take().expect("client callback fired");
    res.map(|socks| {
        socks
            .iter()
            .map(|k| {
                tb.net
                    .node_by_ip(k.remote.ip)
                    .map(|node| tb.net.name_of(node).as_str().to_owned())
                    .unwrap_or_default()
            })
            .collect()
    })
}

#[test]
fn bogomips_requirement_finds_the_two_p4_2400_machines() {
    let (mut s, tb) = with_services(101);
    let names = request_names(&mut s, &tb, "host_cpu_bogomips > 4000\n", 5).unwrap();
    let mut names = names;
    names.sort();
    assert_eq!(names, vec!["dalmatian", "dione"]);
}

#[test]
fn load_requirement_excludes_hosts_running_superpi() {
    let (mut s, tb) = Testbed::paper(103);
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    tb.host("helene").spawn_workload(&mut s, &Workload::super_pi(25)).unwrap();
    tb.host("phoebe").spawn_workload(&mut s, &Workload::super_pi(25)).unwrap();
    s.run_until(SimTime::from_secs(120));

    let names =
        request_names(&mut s, &tb, "host_cpu_free > 0.9\nhost_system_load1 < 0.5\n", 60).unwrap();
    assert!(!names.contains(&"helene".to_owned()), "busy helene excluded: {names:?}");
    assert!(!names.contains(&"phoebe".to_owned()), "busy phoebe excluded: {names:?}");
    assert_eq!(names.len(), 9, "the other nine machines qualify: {names:?}");
}

#[test]
fn failed_server_disappears_then_rejoins_after_recovery() {
    let (mut s, tb) = with_services(107);
    let all = request_names(&mut s, &tb, "", 60).unwrap();
    assert_eq!(all.len(), 11);

    tb.host("mimas").fail();
    // Past 3 missed intervals (probe interval 2 s) plus propagation.
    s.run_until(s.now() + SimDuration::from_secs(20));
    let names = request_names(&mut s, &tb, "", 60).unwrap();
    assert_eq!(names.len(), 10);
    assert!(!names.contains(&"mimas".to_owned()), "failed mimas expired: {names:?}");

    tb.host("mimas").recover();
    s.run_until(s.now() + SimDuration::from_secs(10));
    let names = request_names(&mut s, &tb, "", 60).unwrap();
    assert_eq!(names.len(), 11, "recovered mimas rejoined: {names:?}");
}

#[test]
fn preferred_and_denied_lists_travel_through_the_whole_stack() {
    let (mut s, tb) = with_services(109);
    let names = request_names(
        &mut s,
        &tb,
        "host_cpu_free > 0.5\nuser_preferred_host1 = pandora-x\nuser_denied_host1 = dalmatian\n",
        3,
    )
    .unwrap();
    assert_eq!(names[0], "pandora-x", "preferred host leads: {names:?}");
    assert!(!names.contains(&"dalmatian".to_owned()), "denied host absent: {names:?}");
}

#[test]
fn distributed_mode_serves_requests_after_pulling() {
    let mut s = Scheduler::new();
    let tb = Testbed::builder(113).distributed().start(&mut s);
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    s.run_until(SimTime::from_secs(8));
    assert!(tb.wiz_sys.read().is_empty(), "no data shipped before the first pull");
    let names = request_names(&mut s, &tb, "host_cpu_free > 0.5\n", 4).unwrap();
    assert_eq!(names.len(), 4);
    assert!(s.telemetry.counter("transmitter-pulls") >= 1);
}

#[test]
fn impossible_requirements_and_strict_shortfall_fail_cleanly() {
    let (mut s, tb) = with_services(127);
    let err = request_names(&mut s, &tb, "host_cpu_bogomips > 100000\n", 2).unwrap_err();
    assert_eq!(err, ClientError::NoServers);

    // Exact mode: 11 machines cannot satisfy a 20-server demand.
    let client = tb.client("sagit");
    let got = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    client.request(&mut s, RequestSpec::new("", 20).exact(), move |_s, r| {
        *g.borrow_mut() = Some(r);
    });
    s.run_until(s.now() + SimDuration::from_secs(8));
    let res = got.borrow_mut().take().unwrap();
    assert_eq!(res.unwrap_err(), ClientError::Shortfall { requested: 20, returned: 11 });
}

#[test]
fn security_levels_from_the_dummy_log_gate_selection() {
    let mut s = Scheduler::new();
    let specs = smartsock_hostsim::machine_specs();
    let log: String = specs
        .iter()
        .map(|m| {
            let level = if m.name == "dione" || m.name == "helene" { 5 } else { 1 };
            format!("{} {} {}\n", m.name, m.ip, level)
        })
        .collect();
    let tb = Testbed::builder(131).security_log(&log).start(&mut s);
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    s.run_until(SimTime::from_secs(10));
    let mut names = request_names(&mut s, &tb, "host_security_level >= 3\n", 60).unwrap();
    names.sort();
    assert_eq!(names, vec!["dione", "helene"]);
}

#[test]
fn rank_directive_returns_the_largest_memory_machines() {
    let (mut s, tb) = with_services(137);
    let names =
        request_names(&mut s, &tb, "#!rank host_memory_free desc\nhost_cpu_free > 0.5\n", 2)
            .unwrap();
    // The 512 MB machines have the most free memory.
    let mut names = names;
    names.sort();
    assert_eq!(names, vec!["dalmatian", "dione"]);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| -> (Vec<String>, u64) {
        let (mut s, tb) = with_services(seed);
        let names = request_names(&mut s, &tb, "host_cpu_free > 0.9\n", 5).unwrap();
        (names, s.events_processed())
    };
    let (a1, e1) = run(4242);
    let (a2, e2) = run(4242);
    assert_eq!(a1, a2);
    assert_eq!(e1, e2, "same seed, same event count");
    let (_b1, e3) = run(4243);
    // Different seeds may differ in event interleavings (jitter draws).
    let _ = e3;
}

#[test]
fn service_class_variables_select_only_matching_daemons() {
    // §6 extension: probes report advertised services; requirements can
    // then say "a FILE server" instead of relying on connect failures.
    let (mut s, tb) = Testbed::paper(139);
    use smartsock_apps::massd::FileServer;
    use smartsock_apps::matmul::MatmulWorker;
    for name in ["mimas", "telesto"] {
        FileServer::install(&tb.net, tb.host(name), tb.service_endpoint(name));
    }
    for name in ["dione", "helene"] {
        MatmulWorker::install(
            &tb.net,
            tb.host(name),
            Endpoint::new(tb.host(name).ip(), ports::SERVICE),
        );
    }
    // Reports carrying the masks need one probe round.
    s.run_until(s.now() + SimDuration::from_secs(6));

    let mut files = request_names(&mut s, &tb, "host_service_file == 1\n", 60).unwrap();
    files.sort();
    assert_eq!(files, vec!["mimas", "telesto"]);

    let mut compute = request_names(&mut s, &tb, "host_service_compute == 1\n", 60).unwrap();
    compute.sort();
    assert_eq!(compute, vec!["dione", "helene"]);

    let err = request_names(&mut s, &tb, "host_service_database == 1\n", 1).unwrap_err();
    assert_eq!(err, ClientError::NoServers);
}

#[test]
fn multi_monitor_layout_mirrors_fig_3_8() {
    // Faithful large-deployment layout: one full monitor stack per group,
    // probes reporting group-locally, one receiver merging everything.
    let mut s = Scheduler::new();
    let tb = Testbed::builder(149)
        .multi_monitor()
        .group("sagit", &["sagit"])
        .group("mimas", &["mimas", "telesto", "lhost"])
        .group("dione", &["dione", "titan-x", "pandora-x"])
        .start(&mut s);
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    assert_eq!(tb.sysmons.len(), 4, "default stack + three groups");
    assert_eq!(tb.transmitters.len(), 4);
    s.run_until(SimTime::from_secs(12));

    // Group-local reporting: mimas's stack sees exactly its three members.
    let mimas_mon =
        tb.sysmons.iter().find(|m| m.endpoint().ip == tb.ip("mimas")).expect("mimas runs a stack");
    assert_eq!(mimas_mon.live_servers(), 3);
    // The default stack holds only the ungrouped machines (11 - 7 = 4).
    assert_eq!(tb.sysmon.live_servers(), 4);
    // The receiver merged every group: the wizard sees all 11.
    assert_eq!(tb.wiz_sys.read().len(), 11);

    // Selection across groups still works end to end.
    let names = request_names(&mut s, &tb, "host_cpu_bogomips > 4000\n", 5).unwrap();
    let mut names = names;
    names.sort();
    assert_eq!(names, vec!["dalmatian", "dione"]);
}

#[test]
fn multi_monitor_distributed_pulls_every_group() {
    let mut s = Scheduler::new();
    let tb = Testbed::builder(151)
        .multi_monitor()
        .distributed()
        .group("mimas", &["mimas", "telesto", "lhost"])
        .start(&mut s);
    for host in tb.hosts.values() {
        tb.net.bind_stream(Endpoint::new(host.ip(), ports::SERVICE), |_s, _m| {});
    }
    s.run_until(SimTime::from_secs(8));
    assert!(tb.wiz_sys.read().is_empty(), "nothing shipped before a pull");
    let names = request_names(&mut s, &tb, "", 60).unwrap();
    assert_eq!(names.len(), 11, "one request pulls all groups: {names:?}");
    assert_eq!(s.telemetry.counter("transmitter-pulls"), 2, "both transmitters pulled");
}
