//! Workspace facade crate: hosts the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. Downstream users
//! should depend on the individual `smartsock-*` crates (or the `smartsock`
//! facade) directly.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub use smartsock as core;
pub use smartsock_live as live;
