//! Workspace facade crate: hosts the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. Downstream users
//! should depend on the individual `smartsock-*` crates (or the `smartsock`
//! facade) directly.
pub use smartsock as core;
